//! UCX machine-layer tag generation (paper §III-A, Fig. 3).
//!
//! The 64-bit UCP tag is split into three fields:
//!
//! ```text
//! | MSG_BITS (4) | PE_BITS (default 32) | CNT_BITS (default 28) |
//! ```
//!
//! `MSG_BITS` distinguishes message types — host-side Converse messages vs
//! the `UCX_MSG_TAG_DEVICE` type added by this work for inter-GPU
//! communication. The remainder holds the source PE and a per-PE counter.
//! The PE/CNT split is user-configurable to accommodate different scaling
//! configurations, exactly as the paper describes.

use rucx_ucp::{Tag, TagMask};

/// Number of bits reserved for the message type.
pub const MSG_BITS: u32 = 4;

/// Message types carried in the top `MSG_BITS` bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum MsgType {
    /// Host-side Converse message (envelope + host data).
    Host = 1,
    /// Direct GPU-GPU transfer (`UCX_MSG_TAG_DEVICE`).
    Device = 2,
    /// GPU-GPU transfer under a *user-provided* tag, which both endpoints
    /// can derive independently — the receive can be posted before the
    /// metadata message arrives (the paper's §VI "user-provided tags"
    /// improvement).
    UserDevice = 3,
}

/// A configurable PE/counter split of the tag space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TagScheme {
    pe_bits: u32,
    cnt_bits: u32,
}

impl Default for TagScheme {
    fn default() -> Self {
        TagScheme::new(32, 28).expect("default split is valid")
    }
}

impl TagScheme {
    /// Create a scheme with the given split. `pe_bits + cnt_bits` must equal
    /// `64 - MSG_BITS`.
    pub fn new(pe_bits: u32, cnt_bits: u32) -> Result<Self, String> {
        if pe_bits == 0 || cnt_bits == 0 {
            return Err("pe_bits and cnt_bits must be positive".into());
        }
        if pe_bits + cnt_bits != 64 - MSG_BITS {
            return Err(format!(
                "pe_bits ({pe_bits}) + cnt_bits ({cnt_bits}) must equal {}",
                64 - MSG_BITS
            ));
        }
        Ok(TagScheme { pe_bits, cnt_bits })
    }

    /// Bits allocated to the source PE field.
    pub fn pe_bits(&self) -> u32 {
        self.pe_bits
    }

    /// Bits allocated to the per-PE counter field.
    pub fn cnt_bits(&self) -> u32 {
        self.cnt_bits
    }

    /// Largest PE index representable.
    pub fn max_pe(&self) -> u64 {
        (1u64 << self.pe_bits) - 1
    }

    /// Counter wraps at this value.
    pub fn cnt_period(&self) -> u64 {
        1u64 << self.cnt_bits
    }

    /// Tag for a device (GPU-GPU) transfer from `src_pe` with counter value
    /// `cnt` (wrapped into the counter field).
    pub fn device_tag(&self, src_pe: usize, cnt: u64) -> Tag {
        assert!(
            (src_pe as u64) <= self.max_pe(),
            "PE {src_pe} exceeds tag scheme capacity {} — rebalance PE_BITS/CNT_BITS",
            self.max_pe()
        );
        ((MsgType::Device as u64) << (64 - MSG_BITS))
            | ((src_pe as u64) << self.cnt_bits)
            | (cnt & (self.cnt_period() - 1))
    }

    /// Tag for a device transfer under a user-provided tag. Unlike
    /// [`TagScheme::device_tag`], both sides can compute this without any
    /// exchange, so the receiver can pre-post.
    pub fn user_device_tag(&self, user_tag: u64) -> Tag {
        ((MsgType::UserDevice as u64) << (64 - MSG_BITS))
            | (user_tag & ((1u64 << (64 - MSG_BITS)) - 1))
    }

    /// Tag for host-side Converse messages from `src_pe`.
    pub fn host_tag(&self, src_pe: usize) -> Tag {
        assert!((src_pe as u64) <= self.max_pe());
        ((MsgType::Host as u64) << (64 - MSG_BITS)) | ((src_pe as u64) << self.cnt_bits)
    }

    /// `(tag, mask)` pair matching *any* host-side Converse message.
    pub fn host_probe(&self) -> (Tag, TagMask) {
        (
            (MsgType::Host as u64) << (64 - MSG_BITS),
            0xFu64 << (64 - MSG_BITS),
        )
    }

    /// Extract the message type from a tag.
    pub fn msg_type(&self, tag: Tag) -> Option<MsgType> {
        match tag >> (64 - MSG_BITS) {
            1 => Some(MsgType::Host),
            2 => Some(MsgType::Device),
            3 => Some(MsgType::UserDevice),
            _ => None,
        }
    }

    /// Extract the source PE field.
    pub fn src_pe(&self, tag: Tag) -> usize {
        ((tag << MSG_BITS) >> (MSG_BITS + self.cnt_bits)) as usize
    }

    /// Extract the counter field.
    pub fn cnt(&self, tag: Tag) -> u64 {
        tag & (self.cnt_period() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_split_is_4_32_28() {
        let s = TagScheme::default();
        assert_eq!(s.pe_bits(), 32);
        assert_eq!(s.cnt_bits(), 28);
        assert_eq!(s.cnt_period(), 1 << 28);
    }

    #[test]
    fn invalid_splits_rejected() {
        assert!(TagScheme::new(0, 60).is_err());
        assert!(TagScheme::new(60, 0).is_err());
        assert!(TagScheme::new(30, 28).is_err());
        assert!(TagScheme::new(31, 29).is_ok());
    }

    #[test]
    fn device_tag_roundtrip() {
        let s = TagScheme::default();
        let t = s.device_tag(12345, 678);
        assert_eq!(s.msg_type(t), Some(MsgType::Device));
        assert_eq!(s.src_pe(t), 12345);
        assert_eq!(s.cnt(t), 678);
    }

    #[test]
    fn counter_wraps_within_field() {
        let s = TagScheme::new(56, 4).unwrap();
        let t = s.device_tag(1, 16 + 3); // wraps mod 16
        assert_eq!(s.cnt(t), 3);
    }

    #[test]
    fn host_probe_matches_host_only() {
        let s = TagScheme::default();
        let (want, mask) = s.host_probe();
        let host = s.host_tag(7);
        let dev = s.device_tag(7, 1);
        assert!(rucx_ucp::tag_matches(want, mask, host));
        assert!(!rucx_ucp::tag_matches(want, mask, dev));
    }

    #[test]
    #[should_panic(expected = "rebalance")]
    fn pe_overflow_panics() {
        let s = TagScheme::new(4, 56).unwrap();
        s.device_tag(16, 0);
    }

    #[test]
    fn distinct_senders_and_counters_distinct_tags() {
        let s = TagScheme::default();
        let mut seen = std::collections::HashSet::new();
        for pe in 0..8 {
            for cnt in 0..8 {
                assert!(seen.insert(s.device_tag(pe, cnt)));
            }
        }
    }
}
