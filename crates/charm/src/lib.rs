//! # rucx-charm — Charm++-style runtime with a GPU-aware UCX machine layer
//!
//! The paper's primary contribution, reproduced over the simulated stack:
//! a message-driven runtime (chares, entry methods, per-PE schedulers) whose
//! machine layer sends GPU buffers *directly* through the UCP tagged API
//! while the host-side envelope (with `CkDeviceBuffer` metadata) travels
//! separately (§III). Receives for GPU data are posted when the metadata
//! message arrives, via the post-entry-method extension of the Zero Copy
//! API; the regular entry method runs once every tandem GPU buffer has
//! landed.
//!
//! Layer map (paper → here):
//! - CI file `nocopydevice` declarations → entry methods registered with a
//!   post function ([`Pe::register_ep`]).
//! - `CkDeviceBuffer` → [`wire::DeviceMeta`] + machine-layer tag generation
//!   ([`mltags::TagScheme`], Fig. 3).
//! - `LrtsSendDevice`/`LrtsRecvDevice` → the UCP calls issued in
//!   [`Pe::send_ext`] and envelope dispatch.
//! - Converse scheduler + message queue → [`Pe::run`]/[`Pe::try_step`]
//!   pumping the UCP worker.

pub mod mltags;
pub mod params;
pub mod pe;
pub mod wire;

pub use mltags::{MsgType, TagScheme, MSG_BITS};
pub use params::CharmParams;
pub use pe::{ChareRef, Collection, EpEntry, EpId, ExecFn, Msg, Pe, PostFn, RedOp, RedTarget};
pub use wire::{marshal, DeviceMeta, Envelope};

use rucx_ucp::{MCtx, MSim};

/// Spawn one PE process per simulated process and run `body` on each
/// (SPMD launch, like `charmrun`). The body typically registers chare
/// collections and entry methods, inserts local chares, optionally does
/// main-chare work on PE 0, and finally calls [`Pe::run`].
pub fn launch<F>(sim: &mut MSim, body: F)
where
    F: Fn(&mut Pe, &mut MCtx) + Send + Sync + Clone + 'static,
{
    let n = sim.world().topo.procs();
    for pe in 0..n {
        let body = body.clone();
        sim.spawn(format!("pe{pe}"), 0, move |ctx| {
            let mut rt = Pe::new(pe, n);
            body(&mut rt, ctx);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pe::{Msg, Pe, RedOp, RedTarget};
    use rucx_fabric::Topology;
    use rucx_gpu::{DeviceId, MemRef};
    use rucx_sim::time::us;
    use rucx_sim::RunOutcome;
    use rucx_ucp::{build_sim, MachineConfig};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    fn sim(nodes: usize) -> MSim {
        build_sim(Topology::summit(nodes), MachineConfig::default())
    }

    /// A chare that counts invocations and remembers the last value.
    struct Counter {
        hits: u64,
        last: u64,
        recv_buf: Option<MemRef>,
    }

    fn register_counter(pe: &mut Pe, shared: Arc<AtomicU64>) -> (Collection, EpId, EpId) {
        let n = pe.n_pes as u64;
        let col = pe.register_collection(n, move |i| i as usize % n as usize);
        // ep 0: plain host entry method.
        let shared2 = shared.clone();
        let ep_host = pe.register_ep(
            col,
            None,
            Box::new(move |chare, msg: &Msg, _pe, _ctx| {
                let c = chare.downcast_mut::<Counter>().unwrap();
                c.hits += 1;
                let mut r = marshal::Reader(&msg.params);
                c.last = r.u64();
                shared2.fetch_add(1, Ordering::SeqCst);
            }),
        );
        // ep 1: device entry method with a post function.
        let shared3 = shared;
        let ep_dev = pe.register_ep(
            col,
            Some(Box::new(|chare, _msg| {
                let c = chare.downcast_mut::<Counter>().unwrap();
                vec![c.recv_buf.expect("recv buffer not set")]
            })),
            Box::new(move |chare, msg: &Msg, _pe, _ctx| {
                let c = chare.downcast_mut::<Counter>().unwrap();
                c.hits += 1;
                c.last = msg.device_sizes[0];
                shared3.fetch_add(100, Ordering::SeqCst);
            }),
        );
        for &i in pe.local_indices(col).to_vec().iter() {
            pe.insert_chare(
                col,
                i,
                Box::new(Counter {
                    hits: 0,
                    last: 0,
                    recv_buf: None,
                }),
            );
        }
        (col, ep_host, ep_dev)
    }

    #[test]
    fn host_entry_method_roundtrip() {
        let mut sim = sim(1);
        let hits = Arc::new(AtomicU64::new(0));
        let hits2 = hits.clone();
        launch(&mut sim, move |pe, ctx| {
            let (col, ep_host, _) = register_counter(pe, hits2.clone());
            if pe.index == 0 {
                let mut params = Vec::new();
                marshal::put_u64(&mut params, 777);
                pe.send(ctx, ChareRef { col, index: 3 }, ep_host, params, 0, vec![]);
                // Give the receiver time to process, then exit everyone.
                ctx.advance(us(50.0));
                pe.exit_all(ctx);
            }
            pe.run(ctx);
            if pe.index == 3 {
                let c = pe.chare_mut::<Counter>(col, 3);
                assert_eq!(c.hits, 1);
                assert_eq!(c.last, 777);
            }
        });
        assert_eq!(sim.run(), RunOutcome::Completed);
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn device_entry_method_posts_receive_and_delivers_data() {
        let mut sim = sim(1);
        let size = 256u64 * 1024;
        // Pre-allocate source (PE0/GPU0) and destination (PE1/GPU1).
        let src = sim
            .world_mut()
            .gpu
            .pool
            .alloc_device(DeviceId(0), size, true)
            .unwrap();
        let dst = sim
            .world_mut()
            .gpu
            .pool
            .alloc_device(DeviceId(1), size, true)
            .unwrap();
        let data: Vec<u8> = (0..size).map(|i| (i % 251) as u8).collect();
        sim.world_mut().gpu.pool.write(src, &data).unwrap();

        let hits = Arc::new(AtomicU64::new(0));
        let hits2 = hits.clone();
        launch(&mut sim, move |pe, ctx| {
            let (col, _, ep_dev) = register_counter(pe, hits2.clone());
            if pe.index == 1 {
                pe.chare_mut::<Counter>(col, 1).recv_buf = Some(dst);
            }
            if pe.index == 0 {
                pe.send(
                    ctx,
                    ChareRef { col, index: 1 },
                    ep_dev,
                    vec![],
                    0,
                    vec![src],
                );
                ctx.advance(us(300.0));
                pe.exit_all(ctx);
            }
            pe.run(ctx);
            if pe.index == 1 {
                let c = pe.chare_mut::<Counter>(col, 1);
                assert_eq!(c.hits, 1, "regular ep must run after GPU data lands");
                assert_eq!(c.last, size);
            }
        });
        assert_eq!(sim.run(), RunOutcome::Completed);
        assert_eq!(hits.load(Ordering::SeqCst), 100);
        assert_eq!(sim.world().gpu.pool.read(dst).unwrap(), data);
        // The GPU payload must have used the device path (rendezvous IPC),
        // not ridden inside the envelope.
        assert_eq!(sim.world().ucp.counters.get("ucp.rndv.ipc"), 1);
    }

    #[test]
    fn broadcast_reaches_every_element() {
        let mut sim = sim(2); // 12 PEs
        let hits = Arc::new(AtomicU64::new(0));
        let hits2 = hits.clone();
        launch(&mut sim, move |pe, ctx| {
            let (col, ep_host, _) = register_counter(pe, hits2.clone());
            if pe.index == 0 {
                let mut params = Vec::new();
                marshal::put_u64(&mut params, 5);
                pe.broadcast(ctx, col, ep_host, params);
                ctx.advance(us(200.0));
                pe.exit_all(ctx);
            }
            pe.run(ctx);
        });
        assert_eq!(sim.run(), RunOutcome::Completed);
        assert_eq!(hits.load(Ordering::SeqCst), 12);
    }

    #[test]
    fn reduction_sums_across_pes() {
        let mut sim = sim(2); // 12 PEs
        let result = Arc::new(AtomicU64::new(0));
        let result2 = result.clone();
        launch(&mut sim, move |pe, ctx| {
            let n = pe.n_pes as u64;
            let col = pe.register_collection(n, move |i| i as usize % n as usize);
            let result3 = result2.clone();
            let ep_done = pe.register_ep(
                col,
                None,
                Box::new(move |_chare, msg: &Msg, pe, ctx| {
                    let mut r = marshal::Reader(&msg.params);
                    let sum = r.f64();
                    let count = r.u64();
                    assert_eq!(count, pe.n_pes as u64);
                    result3.store(sum as u64, Ordering::SeqCst);
                    pe.exit_all(ctx);
                }),
            );
            struct Unit;
            for &i in pe.local_indices(col).to_vec().iter() {
                pe.insert_chare(col, i, Box::new(Unit));
            }
            // Every element contributes its index.
            let me = pe.index as f64;
            pe.contribute(
                ctx,
                col,
                pe.index as u64,
                RedOp::Sum,
                me,
                RedTarget::Chare(ChareRef { col, index: 0 }, ep_done),
            );
            pe.run(ctx);
        });
        assert_eq!(sim.run(), RunOutcome::Completed);
        // sum 0..12 = 66
        assert_eq!(result.load(Ordering::SeqCst), 66);
    }

    #[test]
    fn reduction_over_topology_tree() {
        // Same reduction, but climbing the NVLink-aware spanning tree from
        // the collective engine (one leader per node crosses the network).
        let mut sim = sim(2);
        let result = Arc::new(AtomicU64::new(0));
        let result2 = result.clone();
        launch(&mut sim, move |pe, ctx| {
            let tree = ctx.with_world_ref(|w, _| rucx_coll::Tree::topology(&w.topo, 12));
            pe.set_reduction_tree(tree);
            let n = pe.n_pes as u64;
            let col = pe.register_collection(n, move |i| i as usize % n as usize);
            let result3 = result2.clone();
            let ep_done = pe.register_ep(
                col,
                None,
                Box::new(move |_chare, msg: &Msg, pe, ctx| {
                    let mut r = marshal::Reader(&msg.params);
                    let sum = r.f64();
                    assert_eq!(r.u64(), pe.n_pes as u64);
                    result3.store(sum as u64, Ordering::SeqCst);
                    pe.exit_all(ctx);
                }),
            );
            struct Unit;
            for &i in pe.local_indices(col).to_vec().iter() {
                pe.insert_chare(col, i, Box::new(Unit));
            }
            let me = pe.index as f64;
            pe.contribute(
                ctx,
                col,
                pe.index as u64,
                RedOp::Sum,
                me,
                RedTarget::Chare(ChareRef { col, index: 0 }, ep_done),
            );
            pe.run(ctx);
        });
        assert_eq!(sim.run(), RunOutcome::Completed);
        assert_eq!(result.load(Ordering::SeqCst), 66);
    }

    #[test]
    fn self_send_via_local_queue() {
        let mut sim = sim(1);
        let hits = Arc::new(AtomicU64::new(0));
        let hits2 = hits.clone();
        launch(&mut sim, move |pe, ctx| {
            let (col, ep_host, _) = register_counter(pe, hits2.clone());
            if pe.index == 2 {
                let mut params = Vec::new();
                marshal::put_u64(&mut params, 9);
                pe.send(ctx, ChareRef { col, index: 2 }, ep_host, params, 0, vec![]);
                ctx.advance(us(20.0));
                pe.exit_all(ctx);
            }
            pe.run(ctx);
        });
        assert_eq!(sim.run(), RunOutcome::Completed);
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn large_host_message_takes_rendezvous() {
        let mut sim = sim(2);
        let hits = Arc::new(AtomicU64::new(0));
        let hits2 = hits.clone();
        let payload = 1u64 << 20;
        launch(&mut sim, move |pe, ctx| {
            let (col, ep_host, _) = register_counter(pe, hits2.clone());
            if pe.index == 0 {
                let mut params = Vec::new();
                marshal::put_u64(&mut params, 1);
                // Inter-node destination with 1 MiB of phantom host payload.
                pe.send(
                    ctx,
                    ChareRef { col, index: 7 },
                    ep_host,
                    params,
                    payload,
                    vec![],
                );
                ctx.advance(us(800.0));
                pe.exit_all(ctx);
            }
            pe.run(ctx);
        });
        assert_eq!(sim.run(), RunOutcome::Completed);
        assert_eq!(hits.load(Ordering::SeqCst), 1);
        assert!(sim.world().ucp.counters.get("ucp.rndv") >= 1);
    }

    #[test]
    fn pre_posted_user_tag_receives_skip_metadata_delay() {
        // Same 1 MiB transfer twice: once through the regular
        // metadata-then-post flow, once with a user tag pre-posted by the
        // receiver. The pre-posted variant must deliver the same data and
        // complete no later (it starts the fetch when the RTS arrives).
        fn run_once(pre_post: bool) -> (u64, Vec<u8>) {
            let mut sim = sim(1);
            let size = 1u64 << 20;
            let src = sim
                .world_mut()
                .gpu
                .pool
                .alloc_device(DeviceId(0), size, true)
                .unwrap();
            let dst = sim
                .world_mut()
                .gpu
                .pool
                .alloc_device(DeviceId(1), size, true)
                .unwrap();
            let data: Vec<u8> = (0..size).map(|i| (i % 239) as u8).collect();
            sim.world_mut().gpu.pool.write(src, &data).unwrap();
            let done_at = Arc::new(AtomicU64::new(0));
            let done2 = done_at.clone();
            launch(&mut sim, move |pe, ctx| {
                let n = pe.n_pes as u64;
                let col = pe.register_collection(n, move |i| i as usize);
                let done3 = done2.clone();
                let ep = pe.register_ep(
                    col,
                    Some(Box::new(move |_c, _m| vec![dst])),
                    Box::new(move |_c, msg: &Msg, pe, ctx| {
                        assert_eq!(msg.device_sizes, vec![1u64 << 20]);
                        done3.store(ctx.now(), Ordering::SeqCst);
                        pe.exit_all(ctx);
                    }),
                );
                struct Unit;
                for &i in pe.local_indices(col).to_vec().iter() {
                    pe.insert_chare(col, i, Box::new(Unit));
                }
                if pe.index == 1 && pre_post {
                    pe.pre_post_device(ctx, 0xABCD, dst);
                }
                if pe.index == 0 {
                    // Give the receiver a moment to pre-post.
                    ctx.advance(us(5.0));
                    if pre_post {
                        pe.send_user_tagged(
                            ctx,
                            ChareRef { col, index: 1 },
                            ep,
                            vec![],
                            vec![(src, 0xABCD)],
                        );
                    } else {
                        pe.send(ctx, ChareRef { col, index: 1 }, ep, vec![], 0, vec![src]);
                    }
                }
                pe.run(ctx);
            });
            assert_eq!(sim.run(), RunOutcome::Completed);
            (
                done_at.load(Ordering::SeqCst),
                sim.world().gpu.pool.read(dst).unwrap(),
            )
        }
        let size = 1usize << 20;
        let data: Vec<u8> = (0..size).map(|i| (i % 239) as u8).collect();
        let (t_regular, d_regular) = run_once(false);
        let (t_pre, d_pre) = run_once(true);
        assert_eq!(d_regular, data);
        assert_eq!(d_pre, data);
        assert!(
            t_pre < t_regular,
            "pre-posted {t_pre}ns should beat metadata-delayed {t_regular}ns"
        );
    }

    #[test]
    fn many_device_sends_generate_unique_tags() {
        // Exercised indirectly: two device buffers in one entry invocation
        // must both arrive (distinct tags) for the regular ep to run.
        let mut sim = sim(1);
        let size = 64u64 * 1024;
        let mut bufs = vec![];
        for d in [0u32, 0, 1, 1] {
            bufs.push(
                sim.world_mut()
                    .gpu
                    .pool
                    .alloc_device(DeviceId(d), size, true)
                    .unwrap(),
            );
        }
        let (src1, src2, dst1, dst2) = (bufs[0], bufs[1], bufs[2], bufs[3]);
        sim.world_mut()
            .gpu
            .pool
            .write(src1, &vec![1u8; size as usize])
            .unwrap();
        sim.world_mut()
            .gpu
            .pool
            .write(src2, &vec![2u8; size as usize])
            .unwrap();

        let hits = Arc::new(AtomicU64::new(0));
        let hits2 = hits.clone();
        launch(&mut sim, move |pe, ctx| {
            let n = pe.n_pes as u64;
            let col = pe.register_collection(n, move |i| i as usize % n as usize);
            let hits3 = hits2.clone();
            let ep = pe.register_ep(
                col,
                Some(Box::new(move |_chare, _msg| vec![dst1, dst2])),
                Box::new(move |_chare, msg: &Msg, pe, ctx| {
                    assert_eq!(msg.device_sizes, vec![size, size]);
                    hits3.fetch_add(1, Ordering::SeqCst);
                    pe.exit_all(ctx);
                }),
            );
            struct Unit;
            for &i in pe.local_indices(col).to_vec().iter() {
                pe.insert_chare(col, i, Box::new(Unit));
            }
            if pe.index == 0 {
                pe.send(
                    ctx,
                    ChareRef { col, index: 1 },
                    ep,
                    vec![],
                    0,
                    vec![src1, src2],
                );
            }
            pe.run(ctx);
        });
        assert_eq!(sim.run(), RunOutcome::Completed);
        assert_eq!(hits.load(Ordering::SeqCst), 1);
        assert_eq!(
            sim.world().gpu.pool.read(dst1).unwrap(),
            vec![1u8; size as usize]
        );
        assert_eq!(
            sim.world().gpu.pool.read(dst2).unwrap(),
            vec![2u8; size as usize]
        );
    }

    #[test]
    fn chare_error_handler_receives_endpoint_timeout() {
        // Permanent inter-node partition with a tiny retry budget: a device
        // send issued from inside a chare's entry method fails, and the
        // typed error is routed back to *that chare's* error handler via
        // the send-context stamp.
        let mut spec = rucx_fault::FaultSpec::default();
        spec.partitions.push(rucx_fault::PartitionWindow {
            from: 0,
            until: u64::MAX,
        });
        let mut cfg = MachineConfig::default();
        cfg.ucp.max_retries = 2;
        cfg.fault = Some(spec);
        let mut sim = build_sim(Topology::summit(2), cfg);
        let src = sim
            .world_mut()
            .gpu
            .pool
            .alloc_device(DeviceId(0), 2 << 20, false)
            .unwrap();
        let errs = Arc::new(rucx_compat::sync::Mutex::new(Vec::new()));
        let errs2 = errs.clone();
        launch(&mut sim, move |pe, ctx| {
            let n = pe.n_pes as u64;
            let col = pe.register_collection(n, move |i| i as usize);
            // ep 0: kick — chare 0 sends a device buffer to the other node.
            let ep_kick = pe.register_ep(
                col,
                None,
                Box::new(move |_chare, _msg: &Msg, pe, ctx| {
                    pe.send(ctx, ChareRef { col, index: 6 }, 1, vec![], 0, vec![src]);
                }),
            );
            // ep 1: would receive the buffer (never runs: partitioned).
            pe.register_ep(
                col,
                Some(Box::new(|_, _| vec![])),
                Box::new(|_, _, _, _| {}),
            );
            struct Unit;
            for &i in pe.local_indices(col).to_vec().iter() {
                pe.insert_chare(col, i, Box::new(Unit));
            }
            if pe.index != 0 {
                return; // only PE 0 participates; no global scheduler needed
            }
            let e3 = errs2.clone();
            pe.set_error_handler(
                col,
                0,
                Box::new(move |_chare, err, _pe, _ctx| e3.lock().push(err.clone())),
            );
            // Local loopback delivery runs the kick inside entry context.
            pe.send(ctx, ChareRef { col, index: 0 }, ep_kick, vec![], 0, vec![]);
            let e4 = errs2.clone();
            pe.pump_until(ctx, move |_, _| !e4.lock().is_empty());
        });
        assert_eq!(sim.run(), RunOutcome::Completed);
        let got = errs.lock();
        assert!(!got.is_empty());
        for e in got.iter() {
            match e {
                rucx_ucp::UcpError::EndpointTimeout { src, dst, .. } => {
                    assert_eq!((*src, *dst), (0, 6));
                }
                other => panic!("want endpoint timeout, got {other:?}"),
            }
        }
        assert!(sim.world().ucp.counters.get("ucp.unreachable") >= 1);
    }
}
