//! Cluster topology and the process→hardware mapping.
//!
//! Matches the paper's experimental setup (§IV-A): non-SMP builds with one
//! CPU core as the single PE per process and **one process per GPU**; on a
//! Summit node that is six PEs/processes per node, processes `6k..6k+5`
//! living on node `k`, with GPUs 0–2 on socket 0 and 3–5 on socket 1.

use rucx_gpu::DeviceId;

/// Index of an OS process (== PE in the non-SMP configuration).
pub type ProcIndex = usize;

/// Shape of the simulated cluster.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    pub nodes: usize,
    pub gpus_per_node: usize,
    pub gpus_per_socket: usize,
}

impl Topology {
    /// Summit-like topology: 6 GPUs per node, 3 per socket.
    pub fn summit(nodes: usize) -> Self {
        Topology {
            nodes,
            gpus_per_node: 6,
            gpus_per_socket: 3,
        }
    }

    /// Total process (= PE = GPU) count.
    pub fn procs(&self) -> usize {
        self.nodes * self.gpus_per_node
    }

    /// Node a process runs on.
    pub fn node_of(&self, p: ProcIndex) -> usize {
        p / self.gpus_per_node
    }

    /// GPU a process owns (one process per GPU).
    pub fn device_of(&self, p: ProcIndex) -> DeviceId {
        DeviceId(p as u32)
    }

    /// CPU socket a process's GPU hangs off.
    pub fn socket_of(&self, p: ProcIndex) -> usize {
        (p % self.gpus_per_node) / self.gpus_per_socket
    }

    /// Whether two processes share a node.
    pub fn same_node(&self, a: ProcIndex, b: ProcIndex) -> bool {
        self.node_of(a) == self.node_of(b)
    }

    /// Whether two processes' GPUs share a socket (NVLink-reachable).
    pub fn same_socket(&self, a: ProcIndex, b: ProcIndex) -> bool {
        self.same_node(a, b) && self.socket_of(a) == self.socket_of(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summit_mapping() {
        let t = Topology::summit(4);
        assert_eq!(t.procs(), 24);
        assert_eq!(t.node_of(0), 0);
        assert_eq!(t.node_of(5), 0);
        assert_eq!(t.node_of(6), 1);
        assert_eq!(t.device_of(7), DeviceId(7));
        assert_eq!(t.socket_of(0), 0);
        assert_eq!(t.socket_of(2), 0);
        assert_eq!(t.socket_of(3), 1);
        assert_eq!(t.socket_of(9), 1);
        assert!(t.same_node(0, 5));
        assert!(!t.same_node(5, 6));
        assert!(t.same_socket(0, 1));
        assert!(!t.same_socket(2, 3));
        assert!(!t.same_socket(0, 6));
    }
}
