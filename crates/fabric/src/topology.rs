//! Cluster topology and the process→hardware mapping.
//!
//! Matches the paper's experimental setup (§IV-A): non-SMP builds with one
//! CPU core as the single PE per process and **one process per GPU**; on a
//! Summit node that is six PEs/processes per node, processes `6k..6k+5`
//! living on node `k`, with GPUs 0–2 on socket 0 and 3–5 on socket 1.

use rucx_gpu::DeviceId;

/// Index of an OS process (== PE in the non-SMP configuration).
pub type ProcIndex = usize;

/// Shape of the simulated cluster.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    pub nodes: usize,
    pub gpus_per_node: usize,
    pub gpus_per_socket: usize,
}

impl Topology {
    /// Summit-like topology: 6 GPUs per node, 3 per socket.
    pub fn summit(nodes: usize) -> Self {
        Topology {
            nodes,
            gpus_per_node: 6,
            gpus_per_socket: 3,
        }
    }

    /// Total process (= PE = GPU) count.
    pub fn procs(&self) -> usize {
        self.nodes * self.gpus_per_node
    }

    /// Node a process runs on.
    pub fn node_of(&self, p: ProcIndex) -> usize {
        p / self.gpus_per_node
    }

    /// GPU a process owns (one process per GPU).
    pub fn device_of(&self, p: ProcIndex) -> DeviceId {
        DeviceId(p as u32)
    }

    /// CPU socket a process's GPU hangs off.
    pub fn socket_of(&self, p: ProcIndex) -> usize {
        (p % self.gpus_per_node) / self.gpus_per_socket
    }

    /// Whether two processes share a node.
    pub fn same_node(&self, a: ProcIndex, b: ProcIndex) -> bool {
        self.node_of(a) == self.node_of(b)
    }

    /// Whether two processes' GPUs share a socket (NVLink-reachable).
    pub fn same_socket(&self, a: ProcIndex, b: ProcIndex) -> bool {
        self.same_node(a, b) && self.socket_of(a) == self.socket_of(b)
    }

    /// Partition the cluster into at most `shards` contiguous node ranges
    /// (balanced to within one node; the shard count is clamped to
    /// `[1, nodes]`). Contiguity along node boundaries is what lets a
    /// conservative parallel driver use the *inter-node* minimum latency
    /// ([`crate::NetParams::min_latency`]) as its lookahead: every
    /// cross-shard message necessarily crosses a node boundary. That floor
    /// is computed once here and cached on the plan — the sharded runner
    /// consults it per envelope exchange.
    pub fn shard_plan(&self, shards: usize, net: &crate::NetParams) -> ShardPlan {
        ShardPlan {
            shards: shards.clamp(1, self.nodes),
            nodes: self.nodes,
            gpus_per_node: self.gpus_per_node,
            min_latency: net.min_latency(),
        }
    }

    /// Conservative lookahead for a node-contiguous sharding under `net`:
    /// the fabric is a uniform fat tree, so the minimum over all inter-node
    /// links is the α term itself.
    pub fn lookahead(&self, net: &crate::NetParams) -> rucx_sim::time::Duration {
        net.min_latency()
    }
}

/// Balanced contiguous assignment of nodes (and their processes) to
/// shards, from [`Topology::shard_plan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardPlan {
    pub shards: usize,
    pub nodes: usize,
    pub gpus_per_node: usize,
    /// Conservative lookahead floor ([`crate::NetParams::min_latency`]),
    /// cached at plan construction so the per-envelope hot path never
    /// recomputes it.
    pub min_latency: rucx_sim::time::Duration,
}

impl ShardPlan {
    /// Shard owning `node` (balanced: `⌊node·shards/nodes⌋`).
    pub fn shard_of_node(&self, node: usize) -> usize {
        node * self.shards / self.nodes
    }

    /// Shard owning process `p`.
    pub fn shard_of_proc(&self, p: ProcIndex) -> usize {
        self.shard_of_node(p / self.gpus_per_node)
    }

    /// Node range owned by `shard` (contiguous, exactly inverts
    /// [`ShardPlan::shard_of_node`]).
    pub fn nodes_of(&self, shard: usize) -> std::ops::Range<usize> {
        let lo = (shard * self.nodes).div_ceil(self.shards);
        let hi = ((shard + 1) * self.nodes).div_ceil(self.shards);
        lo..hi
    }

    /// Process range owned by `shard`.
    pub fn procs_of(&self, shard: usize) -> std::ops::Range<ProcIndex> {
        let n = self.nodes_of(shard);
        n.start * self.gpus_per_node..n.end * self.gpus_per_node
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_plan_partitions_nodes_contiguously() {
        for nodes in [1usize, 2, 3, 7, 8, 256] {
            for shards in [1usize, 2, 3, 8, 300] {
                let t = Topology::summit(nodes);
                let net = crate::NetParams::default();
                let plan = t.shard_plan(shards, &net);
                assert!(plan.shards >= 1 && plan.shards <= nodes);
                assert_eq!(plan.min_latency, net.min_latency());
                // Ranges tile the node set exactly, in order.
                let mut next = 0;
                for s in 0..plan.shards {
                    let r = plan.nodes_of(s);
                    assert_eq!(r.start, next, "gap before shard {s}");
                    assert!(!r.is_empty(), "empty shard {s} ({nodes}n/{shards}s)");
                    for node in r.clone() {
                        assert_eq!(plan.shard_of_node(node), s);
                    }
                    next = r.end;
                }
                assert_eq!(next, nodes);
                // Process mapping agrees with node mapping.
                for p in 0..t.procs() {
                    assert_eq!(plan.shard_of_proc(p), plan.shard_of_node(t.node_of(p)));
                    assert!(plan.procs_of(plan.shard_of_proc(p)).contains(&p));
                }
            }
        }
    }

    #[test]
    fn lookahead_is_the_alpha_term() {
        use crate::NetParams;
        let t = Topology::summit(4);
        let net = NetParams::default();
        let l = t.lookahead(&net);
        assert_eq!(l, net.min_latency());
        assert!(l > 0);
        // Strictly below any actual wire time.
        assert!(l <= net.wire_time(0, crate::WireKind::Host));
        assert!(l <= net.wire_time(0, crate::WireKind::Gdr));
    }

    #[test]
    fn summit_mapping() {
        let t = Topology::summit(4);
        assert_eq!(t.procs(), 24);
        assert_eq!(t.node_of(0), 0);
        assert_eq!(t.node_of(5), 0);
        assert_eq!(t.node_of(6), 1);
        assert_eq!(t.device_of(7), DeviceId(7));
        assert_eq!(t.socket_of(0), 0);
        assert_eq!(t.socket_of(2), 0);
        assert_eq!(t.socket_of(3), 1);
        assert_eq!(t.socket_of(9), 1);
        assert!(t.same_node(0, 5));
        assert!(!t.same_node(5, 6));
        assert!(t.same_socket(0, 1));
        assert!(!t.same_socket(2, 3));
        assert!(!t.same_socket(0, 6));
    }
}
