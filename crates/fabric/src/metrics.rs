//! Fabric-layer metrics registry (typed handles; see `rucx_sim::Metric`).

use rucx_sim::Metric;

use crate::net::WireKind;

/// Messages injected on the host RDMA path.
pub const MSG_HOST: Metric = Metric::counter("net.msg.host");
/// Messages injected on the GPUDirect RDMA path.
pub const MSG_GDR: Metric = Metric::counter("net.msg.gdr");

/// The message counter for a wire kind.
pub const fn msg(kind: WireKind) -> Metric {
    match kind {
        WireKind::Host => MSG_HOST,
        WireKind::Gdr => MSG_GDR,
    }
}
