//! Inter-node network model: EDR InfiniBand with one NIC per node.
//!
//! An α-β (latency-bandwidth) model with cut-through routing and NIC port
//! serialization: a message injected at time `t` arrives at
//! `t + injection + hops·hop_latency + size/bw`, and occupies the sender's
//! TX port and the receiver's RX port for `size/bw` each, which is what
//! creates contention when six processes on a node share the NIC (visible in
//! the Jacobi3D scaling experiments).

use rucx_sim::sched::Scheduler;
use rucx_sim::stats::Counters;
use rucx_sim::time::{transfer_time, us, Duration, Time};

/// What kind of memory the wire transfer touches on its endpoints; selects
/// the effective bandwidth (GPUDirect RDMA reads run slightly below the host
/// path on PCIe-attached NICs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireKind {
    /// Host-to-host RDMA.
    Host,
    /// At least one endpoint is GPU memory accessed via GPUDirect RDMA.
    Gdr,
}

/// Calibration constants for the network (defaults: Summit EDR InfiniBand).
#[derive(Debug, Clone)]
pub struct NetParams {
    /// Peak per-NIC bandwidth, host path (paper: 12.5 GB/s).
    pub nic_gbps: f64,
    /// Effective bandwidth for GPUDirect RDMA transfers.
    pub gdr_gbps: f64,
    /// Per-message software injection overhead (post WQE, doorbell).
    pub injection: Duration,
    /// Per-hop switch latency.
    pub hop_latency: Duration,
    /// Number of switch hops between any two nodes (fat tree, uniform).
    pub hops: u32,
    /// Independent NIC rails per node (Summit: dual-rail EDR, one port per
    /// CPU socket). A single point-to-point stream uses one rail; a full
    /// node of processes can drive all of them.
    pub rails_per_node: usize,
}

impl Default for NetParams {
    fn default() -> Self {
        NetParams {
            nic_gbps: 12.2,
            gdr_gbps: 11.0,
            injection: us(0.35),
            hop_latency: us(0.30),
            hops: 3,
            rails_per_node: 2,
        }
    }
}

impl NetParams {
    /// Unloaded one-way wire time for `size` bytes.
    pub fn wire_time(&self, size: u64, kind: WireKind) -> Duration {
        let bw = match kind {
            WireKind::Host => self.nic_gbps,
            WireKind::Gdr => self.gdr_gbps,
        };
        self.injection
            + self.hop_latency as Duration * self.hops as Duration
            + transfer_time(size, bw)
    }

    /// Minimum virtual time any inter-node message spends on the wire — the
    /// α term alone (injection plus switch traversal), the floor under every
    /// `wire_time`. A conservative parallel driver that shards the cluster
    /// along node boundaries may use this as its lookahead: no cross-node
    /// interaction can complete faster.
    pub fn min_latency(&self) -> Duration {
        (self.injection + self.hop_latency as Duration * self.hops as Duration).max(1)
    }
}

/// World component: network state for the cluster.
pub struct NetSubsystem {
    pub params: NetParams,
    pub counters: Counters,
    /// Link bandwidth-degradation schedule from a loaded fault spec; `None`
    /// on clean runs (the common case pays one `Option` check).
    pub link_faults: Option<rucx_fault::LinkFaults>,
    nodes: usize,
    tx_busy: Vec<Time>,
    rx_busy: Vec<Time>,
    bytes_sent: u64,
    messages_sent: u64,
}

impl NetSubsystem {
    pub fn new(nodes: usize, params: NetParams) -> Self {
        let rails = params.rails_per_node.max(1);
        NetSubsystem {
            params,
            counters: Counters::new(),
            link_faults: None,
            nodes,
            tx_busy: vec![0; nodes * rails],
            rx_busy: vec![0; nodes * rails],
            bytes_sent: 0,
            messages_sent: 0,
        }
    }

    pub fn nodes(&self) -> usize {
        self.nodes
    }

    fn port(&self, node: usize, rail: usize) -> usize {
        let rails = self.params.rails_per_node.max(1);
        node * rails + rail % rails
    }

    /// How long the TX port of `(node, rail)` is already committed past
    /// `now` — the serialization backlog a new injection on that rail would
    /// queue behind. Zero when the rail is idle. This is the link-occupancy
    /// signal the protocol engine reads when balancing pipeline chunks
    /// across a node's rails.
    pub fn tx_backlog(&self, node: usize, rail: usize, now: Time) -> Duration {
        self.tx_busy[self.port(node, rail)].saturating_sub(now)
    }

    /// RX-side analogue of [`Self::tx_backlog`].
    pub fn rx_backlog(&self, node: usize, rail: usize, now: Time) -> Duration {
        self.rx_busy[self.port(node, rail)].saturating_sub(now)
    }

    /// Total payload bytes ever injected.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent
    }

    /// Total messages ever injected.
    pub fn messages_sent(&self) -> u64 {
        self.messages_sent
    }
}

/// World types that contain a network subsystem.
pub trait HasNet: Sized + 'static {
    fn net(&mut self) -> &mut NetSubsystem;
    fn net_ref(&self) -> &NetSubsystem;
}

impl HasNet for NetSubsystem {
    fn net(&mut self) -> &mut NetSubsystem {
        self
    }
    fn net_ref(&self) -> &NetSubsystem {
        self
    }
}

/// Inject a message of `size` bytes from `(src_node, src_rail)` to
/// `(dst_node, dst_rail)`; `done` runs (on the driver thread) at arrival
/// time, which is also returned. The rail is the NIC port a process uses
/// (its socket, on Summit).
///
/// The payload itself is not moved here — the communication layer above
/// copies bytes between memory pools when the transfer completes, keeping
/// the wire model payload-agnostic.
#[allow(clippy::too_many_arguments)]
pub fn net_transfer<W, F>(
    w: &mut W,
    s: &mut Scheduler<W>,
    (src_node, src_rail): (usize, usize),
    (dst_node, dst_rail): (usize, usize),
    size: u64,
    kind: WireKind,
    done: F,
) -> Time
where
    W: HasNet,
    F: FnOnce(&mut W, &mut Scheduler<W>) + Send + 'static,
{
    assert_ne!(src_node, dst_node, "net_transfer is inter-node only");
    let now = s.now();
    let net = w.net();
    let p = &net.params;
    let mut bw = match kind {
        WireKind::Host => p.nic_gbps,
        WireKind::Gdr => p.gdr_gbps,
    };
    if let Some(lf) = &net.link_faults {
        bw *= lf.bw_factor(src_node, dst_node, now);
    }
    let serialize = transfer_time(size, bw);
    let pipe_latency = p.injection + p.hop_latency as Duration * p.hops as Duration;
    // TX and RX ports are decoupled (switches buffer in between): the
    // sender serializes onto its link as soon as that link is free; the
    // receiver's port serializes deliveries independently. Uncontended,
    // this reduces to cut-through: arrival = start + serialize + latency.
    let tx_port = net.port(src_node, src_rail);
    let rx_port = net.port(dst_node, dst_rail);
    let tx_start = now.max(net.tx_busy[tx_port]);
    let tx_end = tx_start + serialize;
    net.tx_busy[tx_port] = tx_end;
    let rx_start = (tx_start + pipe_latency).max(net.rx_busy[rx_port]);
    let arrival = rx_start + serialize;
    net.rx_busy[rx_port] = arrival;
    net.bytes_sent += size;
    net.messages_sent += 1;
    net.counters.bump(crate::metrics::msg(kind));
    // Link occupancy span: the window this message holds the TX port.
    s.trace_span(
        "fabric.link.busy",
        tx_start,
        tx_end,
        src_node as u32,
        tx_port as u64,
        size,
    );
    s.schedule_at(arrival, done);
    arrival
}

#[cfg(test)]
mod tests {
    use super::*;
    use rucx_sim::{RunOutcome, Simulation};

    fn sys(nodes: usize) -> NetSubsystem {
        NetSubsystem::new(nodes, NetParams::default())
    }

    #[test]
    fn small_message_latency_is_alpha() {
        let p = NetParams::default();
        let t = p.wire_time(8, WireKind::Host);
        // ~1.25 us + ~1 ns wire: small messages are latency-bound.
        assert!(t >= us(1.2) && t <= us(1.4), "t={t}");
    }

    #[test]
    fn large_message_bandwidth_bound() {
        let p = NetParams::default();
        let size = 4u64 << 20;
        let t = p.wire_time(size, WireKind::Host);
        let bw = rucx_sim::time::bandwidth_mbps(size, t);
        assert!((bw - 12_200.0).abs() / 12_200.0 < 0.02, "bw={bw}");
    }

    #[test]
    fn gdr_slower_than_host_path() {
        let p = NetParams::default();
        let size = 1u64 << 20;
        assert!(p.wire_time(size, WireKind::Gdr) > p.wire_time(size, WireKind::Host));
    }

    #[test]
    fn transfer_schedules_completion() {
        let mut sim = Simulation::new(sys(2));
        let expected = NetParams::default().wire_time(1 << 20, WireKind::Host);
        sim.scheduler().schedule_at(0, move |w, s| {
            net_transfer(
                w,
                s,
                (0, 0),
                (1, 0),
                1 << 20,
                WireKind::Host,
                move |w, s| {
                    const ARRIVED: rucx_sim::Metric = rucx_sim::Metric::counter("arrived");
                    assert_eq!(s.now(), expected);
                    w.net().counters.bump(ARRIVED);
                },
            );
        });
        assert_eq!(sim.run(), RunOutcome::Completed);
        assert_eq!(sim.world().counters.get("arrived"), 1);
        assert_eq!(sim.world().messages_sent(), 1);
        assert_eq!(sim.world().bytes_sent(), 1 << 20);
    }

    #[test]
    fn tx_port_serializes_two_senders_from_same_node() {
        let mut sim = Simulation::new(sys(3));
        let size = 4u64 << 20;
        sim.scheduler().schedule_at(0, move |w, s| {
            let a1 = net_transfer(w, s, (0, 0), (1, 0), size, WireKind::Host, |_, _| {});
            let a2 = net_transfer(w, s, (0, 0), (2, 0), size, WireKind::Host, |_, _| {});
            let serialize = transfer_time(size, w.net().params.nic_gbps);
            assert!(a2 >= a1 + serialize - 1, "a1={a1} a2={a2}");
        });
        assert_eq!(sim.run(), RunOutcome::Completed);
    }

    #[test]
    fn rx_port_serializes_two_senders_to_same_node() {
        let mut sim = Simulation::new(sys(3));
        let size = 4u64 << 20;
        sim.scheduler().schedule_at(0, move |w, s| {
            let a1 = net_transfer(w, s, (0, 0), (2, 0), size, WireKind::Host, |_, _| {});
            let a2 = net_transfer(w, s, (1, 0), (2, 0), size, WireKind::Host, |_, _| {});
            let serialize = transfer_time(size, w.net().params.nic_gbps);
            assert!(a2 >= a1 + serialize - 1, "a1={a1} a2={a2}");
        });
        assert_eq!(sim.run(), RunOutcome::Completed);
    }

    #[test]
    fn disjoint_pairs_do_not_contend() {
        let mut sim = Simulation::new(sys(4));
        let size = 4u64 << 20;
        sim.scheduler().schedule_at(0, move |w, s| {
            let a1 = net_transfer(w, s, (0, 0), (1, 0), size, WireKind::Host, |_, _| {});
            let a2 = net_transfer(w, s, (2, 0), (3, 0), size, WireKind::Host, |_, _| {});
            assert_eq!(a1, a2);
        });
        assert_eq!(sim.run(), RunOutcome::Completed);
    }

    #[test]
    fn degraded_link_halves_effective_bandwidth() {
        let mut spec = rucx_fault::FaultSpec::default();
        spec.degrade.push(rucx_fault::DegradeWindow {
            from: 0,
            until: u64::MAX,
            factor: 0.5,
        });
        let lf = rucx_fault::FaultState::from_spec(spec)
            .link_faults()
            .unwrap();
        let mut net = sys(2);
        net.link_faults = Some(lf);
        let mut sim = Simulation::new(net);
        let size = 4u64 << 20;
        sim.scheduler().schedule_at(0, move |w, s| {
            let arrival = net_transfer(w, s, (0, 0), (1, 0), size, WireKind::Host, |_, _| {});
            let p = &w.net().params;
            let clean = p.wire_time(size, WireKind::Host);
            let degraded = p.injection
                + p.hop_latency as Duration * p.hops as Duration
                + transfer_time(size, p.nic_gbps * 0.5);
            assert!(arrival > clean, "degradation must slow the wire");
            // Allow 1 ns of integer rounding.
            assert!(
                arrival.abs_diff(degraded) <= 1,
                "arrival={arrival} want={degraded}"
            );
        });
        assert_eq!(sim.run(), RunOutcome::Completed);
    }

    #[test]
    #[should_panic(expected = "inter-node only")]
    fn loopback_rejected() {
        let mut sim = Simulation::new(sys(2));
        sim.scheduler().schedule_at(0, |w, s| {
            net_transfer(w, s, (1, 0), (1, 0), 8, WireKind::Host, |_, _| {});
        });
        let _ = sim.run();
    }
}
