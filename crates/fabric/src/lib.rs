//! # rucx-fabric — simulated cluster fabric
//!
//! Topology (Summit-like nodes: 2 sockets × 3 GPUs, one process per GPU)
//! and the inter-node network model (EDR InfiniBand α-β model with NIC port
//! contention). Intra-node links (NVLink, X-Bus, CPU-GPU) live in
//! [`rucx_gpu`]; this crate covers everything that crosses node boundaries.

pub mod metrics;
pub mod net;
pub mod topology;

pub use net::{net_transfer, HasNet, NetParams, NetSubsystem, WireKind};
pub use topology::{ProcIndex, ShardPlan, Topology};
