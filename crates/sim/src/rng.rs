//! Deterministic random number generation for workloads.
//!
//! All stochastic choices in workload generators are derived from an explicit
//! seed so that every experiment is exactly reproducible. This module wraps
//! a small, fast PRNG (xoshiro256**-style) so model crates do not each pull
//! in their own generator and seeding discipline.

/// A small, fast, seedable PRNG (xoshiro256** core).
///
/// Not cryptographically secure; statistically solid for workload synthesis.
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Create a generator from a seed. Any seed (including 0) is valid; the
    /// state is expanded with splitmix64 so no all-zero state can occur.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        SimRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next 64 uniformly random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let r = self.s[1]
            .wrapping_mul(5)
            .rotate_left(7)
            .wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        r
    }

    /// Uniform value in `[0, bound)`. Panics if `bound == 0`.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Lemire's multiply-shift rejection method.
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let lo = m as u64;
            if lo >= bound || lo >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform f64 in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Fill a byte slice with random data (for message payload integrity
    /// checks).
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        let mut chunks = buf.chunks_exact_mut(8);
        for c in &mut chunks {
            c.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let b = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&b[..rem.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn zero_seed_is_fine() {
        let mut r = SimRng::new(0);
        let v: Vec<u64> = (0..8).map(|_| r.next_u64()).collect();
        assert!(v.iter().any(|&x| x != 0));
    }

    #[test]
    fn next_below_respects_bound() {
        let mut r = SimRng::new(7);
        for bound in [1u64, 2, 3, 10, 1000, u64::MAX / 2] {
            for _ in 0..50 {
                assert!(r.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut r = SimRng::new(9);
        for _ in 0..1000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut r = SimRng::new(11);
        for len in [0usize, 1, 7, 8, 9, 31] {
            let mut buf = vec![0u8; len];
            r.fill_bytes(&mut buf);
            if len >= 8 {
                assert!(buf.iter().any(|&b| b != 0));
            }
        }
    }

    #[test]
    fn roughly_uniform_below() {
        let mut r = SimRng::new(13);
        let mut counts = [0u32; 10];
        for _ in 0..10_000 {
            counts[r.next_below(10) as usize] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "counts={counts:?}");
        }
    }
}
