//! Deterministic random number generation for workloads.
//!
//! All stochastic choices in workload generators are derived from an
//! explicit seed so that every experiment is exactly reproducible. The
//! generator itself lives in [`rucx_compat::rng`] (splitmix64-seeded
//! xoshiro256++, reference-vector tested there); this module re-exposes it
//! under the simulation's historical `SimRng` surface so model crates keep
//! one seeding discipline.

use rucx_compat::rng::Rng;

/// A small, fast, seedable PRNG (xoshiro256++ core from `rucx-compat`).
///
/// Not cryptographically secure; statistically solid for workload synthesis.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: Rng,
}

impl SimRng {
    /// Create a generator from a seed. Any seed (including 0) is valid; the
    /// state is expanded with splitmix64 so no all-zero state can occur.
    pub fn new(seed: u64) -> Self {
        SimRng {
            inner: Rng::new(seed),
        }
    }

    /// Next 64 uniformly random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform value in `[0, bound)`. Panics if `bound == 0`.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        self.inner.next_below(bound)
    }

    /// Uniform f64 in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        self.inner.gen_f64()
    }

    /// Fill a byte slice with random data (for message payload integrity
    /// checks).
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        self.inner.fill(buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn zero_seed_is_fine() {
        let mut r = SimRng::new(0);
        let v: Vec<u64> = (0..8).map(|_| r.next_u64()).collect();
        assert!(v.iter().any(|&x| x != 0));
    }

    #[test]
    fn next_below_respects_bound() {
        let mut r = SimRng::new(7);
        for bound in [1u64, 2, 3, 10, 1000, u64::MAX / 2] {
            for _ in 0..50 {
                assert!(r.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut r = SimRng::new(9);
        for _ in 0..1000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut r = SimRng::new(11);
        for len in [0usize, 1, 7, 8, 9, 31] {
            let mut buf = vec![0u8; len];
            r.fill_bytes(&mut buf);
            if len >= 8 {
                assert!(buf.iter().any(|&b| b != 0));
            }
        }
    }

    #[test]
    fn roughly_uniform_below() {
        let mut r = SimRng::new(13);
        let mut counts = [0u32; 10];
        for _ in 0..10_000 {
            counts[r.next_below(10) as usize] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "counts={counts:?}");
        }
    }

    #[test]
    fn matches_compat_rng_stream() {
        // SimRng is a thin veneer: same seed, same stream as the compat
        // generator (so cross-crate seeding stays coherent).
        let mut a = SimRng::new(99);
        let mut b = rucx_compat::rng::Rng::new(99);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
