//! The simulation driver: owns the world, the scheduler, and the process
//! table, and runs the main event loop.

use crate::process::{spawn_thread, ProcCtx, ProcMsg, ProcSlot, ProcState, ResumeMsg, YieldKind};
use crate::sched::{EventPayload, ProcId, Scheduler};
use crate::time::Time;

/// Why [`Simulation::run_until`] returned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunOutcome {
    /// Event queue drained and every process finished.
    Completed,
    /// The time limit was reached with work still pending.
    TimeLimit,
    /// [`Scheduler::stop`] was called.
    Stopped,
    /// No events pending but some processes are still parked: a deadlock.
    /// Contains `(process name, what it is blocked on)` pairs.
    Deadlock(Vec<(String, String)>),
}

/// Configuration for the simulation driver.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Stack size for process threads. Simulated PEs are shallow; the
    /// default keeps 1000+ PE simulations cheap.
    pub stack_size: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            stack_size: 512 * 1024,
        }
    }
}

/// A deterministic discrete-event simulation over world state `W`.
///
/// ```
/// use rucx_sim::Simulation;
///
/// let mut sim = Simulation::new(0u64);
/// sim.scheduler().schedule_at(100, |w, _| *w += 1);
/// sim.spawn("worker", 0, |ctx| {
///     ctx.advance(50);
///     ctx.with_world(|w, _| *w += 10);
/// });
/// let outcome = sim.run();
/// assert_eq!(outcome, rucx_sim::RunOutcome::Completed);
/// assert_eq!(*sim.world(), 11);
/// assert_eq!(sim.scheduler().now(), 100);
/// ```
pub struct Simulation<W> {
    world: W,
    sched: Scheduler<W>,
    procs: Vec<ProcSlot<W>>,
    config: SimConfig,
}

impl<W: 'static> Simulation<W> {
    /// Create a simulation around an initial world.
    pub fn new(world: W) -> Self {
        Self::with_config(world, SimConfig::default())
    }

    /// Create a simulation with an explicit driver configuration.
    pub fn with_config(world: W, config: SimConfig) -> Self {
        Simulation {
            world,
            sched: Scheduler::new(),
            procs: Vec::new(),
            config,
        }
    }

    /// Immutable access to the world (between runs).
    pub fn world(&self) -> &W {
        &self.world
    }

    /// Mutable access to the world (between runs).
    pub fn world_mut(&mut self) -> &mut W {
        &mut self.world
    }

    /// Access the scheduler (to create triggers, schedule setup events…).
    pub fn scheduler(&mut self) -> &mut Scheduler<W> {
        &mut self.sched
    }

    /// Spawn a simulated process whose body starts at virtual time `start`.
    pub fn spawn(
        &mut self,
        name: impl Into<String>,
        start: Time,
        body: impl FnOnce(&mut ProcCtx<W>) + Send + 'static,
    ) -> ProcId {
        let id = ProcId(self.procs.len() as u32);
        let slot = spawn_thread(id, name.into(), self.config.stack_size, Box::new(body));
        self.procs.push(slot);
        self.sched.schedule_wake(start, id);
        id
    }

    fn drain_pending_spawns(&mut self) {
        while let Some(p) = self.sched.pending_spawns.pop() {
            let id = ProcId(self.procs.len() as u32);
            let slot = spawn_thread(id, p.name, self.config.stack_size, p.body);
            self.procs.push(slot);
            self.sched.schedule_wake(p.start, id);
        }
    }

    /// Resume process `p` and service its world calls until it yields,
    /// finishes, or panics.
    fn run_proc(&mut self, p: ProcId) {
        let now = self.sched.now();
        {
            let slot = &mut self.procs[p.index()];
            if slot.state == ProcState::Finished {
                return;
            }
            slot.state = ProcState::Active;
            slot.resume_tx
                .send(ResumeMsg::Resume { now })
                .expect("process thread vanished");
        }
        loop {
            let msg = match self.procs[p.index()].cmd_rx.recv() {
                Ok(m) => m,
                Err(_) => {
                    // Channel closed without Done/Panicked: the thread was
                    // torn down abnormally.
                    let name = self.procs[p.index()].name.clone();
                    panic!("simulated process '{name}' terminated abnormally");
                }
            };
            match msg {
                ProcMsg::Call(f) => {
                    f(&mut self.world, &mut self.sched);
                    self.drain_pending_spawns();
                    self.procs[p.index()]
                        .resume_tx
                        .send(ResumeMsg::CallDone)
                        .expect("process thread vanished");
                }
                ProcMsg::Yield(kind) => {
                    let slot = &mut self.procs[p.index()];
                    match kind {
                        YieldKind::AdvanceTo(t) => {
                            slot.state = Blocked::sleep(t);
                            self.sched.schedule_wake(t, p);
                        }
                        YieldKind::YieldNow => {
                            slot.state = ProcState::Active;
                            self.sched.runnable.push_back(p);
                        }
                        YieldKind::WaitTrigger(t) => {
                            if self.sched.add_trigger_waiter(t, p) {
                                self.procs[p.index()].state = Blocked::trigger(t.0);
                            } else {
                                self.sched.runnable.push_back(p);
                            }
                        }
                        YieldKind::WaitNotify(n, seen) => {
                            if self.sched.add_notify_waiter(n, seen, p) {
                                self.procs[p.index()].state = Blocked::notify(n.0);
                            } else {
                                self.sched.runnable.push_back(p);
                            }
                        }
                    }
                    return;
                }
                ProcMsg::Done => {
                    let slot = &mut self.procs[p.index()];
                    slot.state = ProcState::Finished;
                    if let Some(j) = slot.join.take() {
                        let _ = j.join();
                    }
                    return;
                }
                ProcMsg::Panicked(msg) => {
                    let name = self.procs[p.index()].name.clone();
                    if let Some(j) = self.procs[p.index()].join.take() {
                        let _ = j.join();
                    }
                    panic!("simulated process '{name}' panicked: {msg}");
                }
            }
        }
    }

    /// Run until the event queue drains, a deadlock is detected, `stop()` is
    /// called, or virtual time would exceed `limit`.
    pub fn run_until(&mut self, limit: Time) -> RunOutcome {
        self.sched.clear_stopped();
        loop {
            // Drain all processes runnable at the current time first; they
            // may create events or wake more processes at the same instant.
            while let Some(p) = self.sched.runnable.pop_front() {
                self.run_proc(p);
                self.drain_pending_spawns();
                if self.sched.is_stopped() {
                    return RunOutcome::Stopped;
                }
            }
            match self.sched.peek_time() {
                None => {
                    return if self.all_finished() {
                        RunOutcome::Completed
                    } else {
                        RunOutcome::Deadlock(self.blocked_report())
                    };
                }
                Some(t) if t > limit => return RunOutcome::TimeLimit,
                Some(t) => {
                    self.sched.set_now(t);
                    let ev = self.sched.pop_event().expect("peeked event vanished");
                    match ev.payload {
                        EventPayload::Closure(f) => {
                            f(&mut self.world, &mut self.sched);
                            self.drain_pending_spawns();
                        }
                        EventPayload::WakeProc(p) => {
                            // A sleeping process may have been woken earlier
                            // by a trigger only if it yielded again since;
                            // sleeps are exact, so just run it.
                            self.sched.runnable.push_back(p);
                        }
                    }
                    if self.sched.is_stopped() {
                        return RunOutcome::Stopped;
                    }
                }
            }
        }
    }

    /// Run to completion (no time limit).
    pub fn run(&mut self) -> RunOutcome {
        self.run_until(Time::MAX)
    }

    fn all_finished(&self) -> bool {
        self.procs.iter().all(|p| p.state == ProcState::Finished)
    }

    fn blocked_report(&self) -> Vec<(String, String)> {
        self.procs
            .iter()
            .filter_map(|p| match &p.state {
                ProcState::Blocked(what) => Some((p.name.clone(), what.clone())),
                ProcState::Active => Some((p.name.clone(), "runnable?".to_string())),
                ProcState::Finished => None,
            })
            .collect()
    }

    /// Number of processes ever spawned.
    pub fn process_count(&self) -> usize {
        self.procs.len()
    }
}

/// Helpers producing `ProcState::Blocked` descriptions.
struct Blocked;
impl Blocked {
    fn sleep(t: Time) -> ProcState {
        ProcState::Blocked(format!("sleep until t={t}"))
    }
    fn trigger(id: u32) -> ProcState {
        ProcState::Blocked(format!("trigger #{id}"))
    }
    fn notify(id: u32) -> ProcState {
        ProcState::Blocked(format!("notify #{id}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_simulation_completes() {
        let mut sim = Simulation::new(());
        assert_eq!(sim.run(), RunOutcome::Completed);
        assert_eq!(sim.scheduler().now(), 0);
    }

    #[test]
    fn events_advance_time() {
        let mut sim = Simulation::new(Vec::<u64>::new());
        sim.scheduler().schedule_at(10, |w, s| w.push(s.now()));
        sim.scheduler().schedule_at(30, |w, s| w.push(s.now()));
        assert_eq!(sim.run(), RunOutcome::Completed);
        assert_eq!(sim.world(), &vec![10, 30]);
    }

    #[test]
    fn process_advance_and_world_calls() {
        let mut sim = Simulation::new(0u64);
        sim.spawn("p", 5, |ctx| {
            assert_eq!(ctx.now(), 5);
            ctx.advance(20);
            assert_eq!(ctx.now(), 25);
            let doubled = ctx.with_world(|w, _| {
                *w = 21;
                *w * 2
            });
            assert_eq!(doubled, 42);
        });
        assert_eq!(sim.run(), RunOutcome::Completed);
        assert_eq!(*sim.world(), 21);
        assert_eq!(sim.scheduler().now(), 25);
    }

    #[test]
    fn trigger_handshake_between_processes() {
        let mut sim = Simulation::new(Vec::<&'static str>::new());
        let t = sim.scheduler().new_trigger();
        sim.spawn("waiter", 0, move |ctx| {
            ctx.wait(t);
            let now = ctx.now();
            ctx.with_world(move |w, _| w.push("woken"));
            assert_eq!(now, 40);
        });
        sim.spawn("firer", 0, move |ctx| {
            ctx.advance(40);
            ctx.with_world(move |w, s| {
                w.push("firing");
                s.fire(t);
            });
        });
        assert_eq!(sim.run(), RunOutcome::Completed);
        assert_eq!(sim.world(), &vec!["firing", "woken"]);
    }

    #[test]
    fn wait_on_fired_trigger_returns_immediately() {
        let mut sim = Simulation::new(());
        let t = sim.scheduler().new_trigger();
        sim.scheduler().fire(t);
        sim.spawn("p", 0, move |ctx| {
            ctx.wait(t);
            assert_eq!(ctx.now(), 0);
        });
        assert_eq!(sim.run(), RunOutcome::Completed);
    }

    #[test]
    fn deadlock_detected_and_reported() {
        let mut sim = Simulation::new(());
        let t = sim.scheduler().new_trigger();
        sim.spawn("stuck", 0, move |ctx| {
            ctx.wait(t); // never fired
        });
        match sim.run() {
            RunOutcome::Deadlock(blocked) => {
                assert_eq!(blocked.len(), 1);
                assert_eq!(blocked[0].0, "stuck");
                assert!(blocked[0].1.contains("trigger"));
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn time_limit_stops_early() {
        let mut sim = Simulation::new(0u32);
        sim.scheduler().schedule_at(1_000, |w, _| *w += 1);
        assert_eq!(sim.run_until(500), RunOutcome::TimeLimit);
        assert_eq!(*sim.world(), 0);
        // Resuming past the limit executes the event.
        assert_eq!(sim.run_until(2_000), RunOutcome::Completed);
        assert_eq!(*sim.world(), 1);
    }

    #[test]
    fn stop_from_event() {
        let mut sim = Simulation::new(());
        sim.scheduler().schedule_at(10, |_, s| s.stop());
        sim.scheduler().schedule_at(20, |_, _| panic!("must not run"));
        assert_eq!(sim.run(), RunOutcome::Stopped);
    }

    #[test]
    #[should_panic(expected = "panicked: boom")]
    fn process_panic_propagates() {
        let mut sim = Simulation::new(());
        sim.spawn("bad", 0, |_| panic!("boom"));
        let _ = sim.run();
    }

    #[test]
    fn notify_wakes_all_waiters_in_order() {
        let mut sim = Simulation::new(Vec::<u32>::new());
        let n = sim.scheduler().new_notify();
        for i in 0..3u32 {
            sim.spawn(format!("w{i}"), 0, move |ctx| {
                let seen = ctx.with_world(move |_, s| s.notify_epoch(n));
                ctx.wait_notify(n, seen);
                ctx.with_world(move |w, _| w.push(i));
            });
        }
        sim.spawn("notifier", 0, move |ctx| {
            ctx.advance(100);
            ctx.with_world(move |_, s| s.notify(n));
        });
        assert_eq!(sim.run(), RunOutcome::Completed);
        assert_eq!(sim.world(), &vec![0, 1, 2]);
    }

    #[test]
    fn wait_until_rechecks_predicate() {
        let mut sim = Simulation::new(0u32);
        let n = sim.scheduler().new_notify();
        sim.spawn("consumer", 0, move |ctx| {
            ctx.wait_until(n, |w, _| *w >= 3);
            assert_eq!(ctx.now(), 30);
        });
        sim.spawn("producer", 0, move |ctx| {
            for _ in 0..3 {
                ctx.advance(10);
                ctx.with_world(move |w, s| {
                    *w += 1;
                    s.notify(n);
                });
            }
        });
        assert_eq!(sim.run(), RunOutcome::Completed);
    }

    #[test]
    fn dynamic_spawn_from_world_call() {
        let mut sim = Simulation::new(0u32);
        sim.spawn("parent", 0, |ctx| {
            ctx.with_world(|_, s| {
                s.spawn_process("child", 10, |ctx| {
                    assert_eq!(ctx.now(), 10);
                    ctx.with_world(|w, _| *w += 7);
                });
            });
        });
        assert_eq!(sim.run(), RunOutcome::Completed);
        assert_eq!(*sim.world(), 7);
        assert_eq!(sim.process_count(), 2);
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        // Two identical simulations must produce identical event traces.
        fn build_and_run() -> Vec<(u64, u32)> {
            let mut sim = Simulation::new(Vec::<(u64, u32)>::new());
            let n = sim.scheduler().new_notify();
            for i in 0..8u32 {
                sim.spawn(format!("p{i}"), (i as u64) * 3 % 5, move |ctx| {
                    for k in 0..4u64 {
                        ctx.advance((i as u64 * 7 + k * 13) % 17 + 1);
                        let now = ctx.now();
                        ctx.with_world(move |w, s| {
                            w.push((now, i));
                            s.notify(n);
                        });
                    }
                });
            }
            sim.run();
            sim.world().clone()
        }
        assert_eq!(build_and_run(), build_and_run());
    }
}
