//! The simulation driver and the execution core.
//!
//! All mutable run state — the world, the scheduler, and the process table
//! — lives in one heap-allocated [`Core`] that travels between execution
//! contexts as a baton (see [`crate::process`] for the full model). The
//! [`Simulation`] handle owns the core between runs; during a run the core
//! moves to whichever thread is executing, and the driver parks on a single
//! MPSC *verdict* channel until the run ends and the core comes home.

use std::sync::Arc;

use rucx_compat::channel::{unbounded, Receiver, Sender};

use crate::calendar::Backend;
use crate::pool::ProcessPool;
use crate::process::{lease_process, Body, ProcCtx, ProcSlot, ProcState};
use crate::sched::{Due, EventPayload, ProcId, Scheduler};
use crate::time::Time;

/// Why [`Simulation::run_until`] returned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunOutcome {
    /// Event queue drained and every process finished.
    Completed,
    /// The time limit was reached with work still pending.
    TimeLimit,
    /// [`Scheduler::stop`] was called.
    Stopped,
    /// No events pending but some processes are still parked: a deadlock.
    /// Contains `(process name, what it is blocked on)` pairs.
    Deadlock(Vec<(String, String)>),
}

/// Configuration for the simulation driver.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Stack size for process threads. Simulated PEs are shallow; the
    /// default keeps 1000+ PE simulations cheap.
    pub stack_size: usize,
    /// Thread pool that backs simulated processes. Defaults to the
    /// workspace-global [`ProcessPool`], so constructing many `Simulation`s
    /// in a row (scaling sweeps build hundreds) reuses the same OS threads
    /// instead of spawning ~1536 fresh ones each time. Point this at a
    /// private pool for exact thread accounting in tests.
    pub pool: Arc<ProcessPool>,
    /// Event-queue backend: the calendar queue, or the `BinaryHeap`
    /// determinism oracle. Defaults to [`Backend::from_env`].
    pub backend: Backend,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            stack_size: 512 * 1024,
            pool: ProcessPool::global(),
            backend: Backend::from_env(),
        }
    }
}

/// The execution core: everything a running simulation mutates, boxed so it
/// can move between threads as a single baton. Exactly one context (the
/// driver or one process thread) owns it at any moment, which is what makes
/// world access direct and data-race free without any locking.
pub(crate) struct Core<W> {
    pub world: W,
    pub sched: Scheduler<W>,
    pub procs: Vec<ProcSlot<W>>,
    pub config: SimConfig,
    /// Time limit of the run in progress (set by [`Simulation::run_until`]).
    pub limit: Time,
    /// Verdict channel for leasing new processes mid-run.
    pub done_tx: Sender<Verdict<W>>,
}

/// End-of-run report sent back to the driver, carrying the core home.
pub(crate) struct Verdict<W> {
    pub kind: VerdictKind,
    /// `None` only if the core was lost to a panic inside an event closure.
    pub core: Option<Box<Core<W>>>,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum VerdictKind {
    Completed,
    TimeLimit,
    Stopped,
    /// Queue drained with unfinished processes; the driver rebuilds the
    /// blocked report from the returned core.
    Deadlock,
    /// A process body panicked.
    ProcPanicked {
        name: String,
        at: Time,
        msg: String,
    },
    /// An event closure panicked while a process thread was dispatching.
    EventPanicked {
        msg: String,
    },
}

/// What [`dispatch`] did with the baton.
pub(crate) enum Dispatch<W> {
    /// `me` was the next runnable process: the caller keeps the baton and
    /// resumes immediately (zero context switches).
    Resumed(Box<Core<W>>),
    /// The baton was handed to another process's wakeup cell.
    HandedOff,
    /// The run ended while the caller held the baton.
    Ended(VerdictKind, Box<Core<W>>),
}

/// The dispatch loop, identical regardless of which thread runs it: drain
/// runnable processes first (they may create same-instant work), then pop
/// timed events in `(time, seq)` order. Dispatch *order* — and therefore
/// determinism — does not depend on which OS thread happens to be turning
/// the crank.
///
/// `me` is `Some(id)` when a mid-yield process is dispatching and should
/// take the baton back the moment its own wakeup reaches the front;
/// `None` when the driver or a finished process is dispatching.
pub(crate) fn dispatch<W: Send + 'static>(
    mut core: Box<Core<W>>,
    me: Option<ProcId>,
) -> Dispatch<W> {
    loop {
        if core.sched.is_stopped() {
            return Dispatch::Ended(VerdictKind::Stopped, core);
        }
        if let Some(q) = core.sched.runnable.pop_front() {
            if Some(q) == me {
                return Dispatch::Resumed(core);
            }
            if core.procs[q.index()].state == ProcState::Finished {
                continue;
            }
            core.procs[q.index()].state = ProcState::Active;
            // Clone the Arc'd sender so the core (which contains the
            // original) can move through the cell.
            let tx = core.procs[q.index()].resume_tx.clone();
            if tx.send(core).is_err() {
                panic!("simulated process thread vanished");
            }
            return Dispatch::HandedOff;
        }
        match core.sched.pop_due(core.limit) {
            Due::Empty => {
                let kind = if core.all_finished() {
                    VerdictKind::Completed
                } else {
                    VerdictKind::Deadlock
                };
                return Dispatch::Ended(kind, core);
            }
            Due::Later(_) => return Dispatch::Ended(VerdictKind::TimeLimit, core),
            Due::Event(ev) => {
                core.sched.set_now(ev.time);
                match ev.payload {
                    EventPayload::Closure(f) => {
                        f(&mut core.world, &mut core.sched);
                        core.drain_pending_spawns();
                    }
                    EventPayload::WakeProc(p) => {
                        // A sleeping process may have been woken earlier
                        // by a trigger only if it yielded again since;
                        // sleeps are exact, so just run it.
                        core.sched.runnable.push_back(p);
                    }
                }
            }
        }
    }
}

impl<W: Send + 'static> Core<W> {
    pub(crate) fn add_process(&mut self, name: String, start: Time, body: Body<W>) -> ProcId {
        let id = ProcId(self.procs.len() as u32);
        let slot = lease_process(
            &self.config.pool,
            id,
            name,
            self.config.stack_size,
            self.done_tx.clone(),
            body,
        );
        self.procs.push(slot);
        self.sched.schedule_wake(start, id);
        id
    }

    pub(crate) fn drain_pending_spawns(&mut self) {
        while let Some(p) = self.sched.pending_spawns.pop() {
            self.add_process(p.name, p.start, p.body);
        }
    }

    pub(crate) fn all_finished(&self) -> bool {
        self.procs.iter().all(|p| p.state == ProcState::Finished)
    }

    fn blocked_report(&self) -> Vec<(String, String)> {
        self.procs
            .iter()
            .filter_map(|p| match &p.state {
                ProcState::Blocked(what) => Some((p.name.clone(), what.clone())),
                ProcState::Active => Some((p.name.clone(), "runnable?".to_string())),
                ProcState::Finished => None,
            })
            .collect()
    }
}

/// A deterministic discrete-event simulation over world state `W`.
///
/// ```
/// use rucx_sim::Simulation;
///
/// let mut sim = Simulation::new(0u64);
/// sim.scheduler().schedule_at(100, |w, _| *w += 1);
/// sim.spawn("worker", 0, |ctx| {
///     ctx.advance(50);
///     ctx.with_world(|w, _| *w += 10);
/// });
/// let outcome = sim.run();
/// assert_eq!(outcome, rucx_sim::RunOutcome::Completed);
/// assert_eq!(*sim.world(), 11);
/// assert_eq!(sim.scheduler().now(), 100);
/// ```
pub struct Simulation<W> {
    /// `Some` whenever the driver holds the baton (always, between runs —
    /// unless an event-closure panic destroyed the core).
    core: Option<Box<Core<W>>>,
    done_rx: Receiver<Verdict<W>>,
}

impl<W: Send + 'static> Simulation<W> {
    /// Create a simulation around an initial world.
    pub fn new(world: W) -> Self {
        Self::with_config(world, SimConfig::default())
    }

    /// Create a simulation with an explicit driver configuration.
    pub fn with_config(world: W, config: SimConfig) -> Self {
        let (done_tx, done_rx) = unbounded();
        let sched = Scheduler::with_backend(config.backend);
        Simulation {
            core: Some(Box::new(Core {
                world,
                sched,
                procs: Vec::new(),
                config,
                limit: Time::MAX,
                done_tx,
            })),
            done_rx,
        }
    }

    fn core(&self) -> &Core<W> {
        self.core.as_ref().expect("simulation core lost to a panic")
    }

    fn core_mut(&mut self) -> &mut Core<W> {
        self.core.as_mut().expect("simulation core lost to a panic")
    }

    /// Immutable access to the world (between runs).
    pub fn world(&self) -> &W {
        &self.core().world
    }

    /// Mutable access to the world (between runs).
    pub fn world_mut(&mut self) -> &mut W {
        &mut self.core_mut().world
    }

    /// Access the scheduler (to create triggers, schedule setup events…).
    pub fn scheduler(&mut self) -> &mut Scheduler<W> {
        &mut self.core_mut().sched
    }

    /// Immutable access to the scheduler (between runs).
    pub fn scheduler_ref(&self) -> &Scheduler<W> {
        &self.core().sched
    }

    /// Virtual time of the earliest queued event, if any — what a
    /// conservative parallel driver needs to compute the global window
    /// bound (see [`crate::shard`]).
    pub fn next_event_time(&mut self) -> Option<Time> {
        self.core_mut().sched.peek_time()
    }

    /// True when every spawned process has finished (vacuously true for
    /// pure event-closure simulations).
    pub fn all_processes_finished(&self) -> bool {
        self.core().all_finished()
    }

    /// `(process name, blocked-on)` pairs for every unfinished process —
    /// the same report [`RunOutcome::Deadlock`] carries.
    pub fn blocked_processes(&self) -> Vec<(String, String)> {
        self.core().blocked_report()
    }

    /// Spawn a simulated process whose body starts at virtual time `start`.
    ///
    /// The backing OS thread is leased from the configured [`ProcessPool`]
    /// (reusing an idle worker when one is available) and returns to the
    /// pool when the process finishes, panics, or the simulation is
    /// dropped.
    pub fn spawn(
        &mut self,
        name: impl Into<String>,
        start: Time,
        body: impl FnOnce(&mut ProcCtx<W>) + Send + 'static,
    ) -> ProcId {
        self.core_mut()
            .add_process(name.into(), start, Box::new(body))
    }

    /// Run until the event queue drains, a deadlock is detected, `stop()` is
    /// called, or virtual time would exceed `limit`.
    pub fn run_until(&mut self, limit: Time) -> RunOutcome {
        let mut core = self.core.take().expect("simulation core lost to a panic");
        core.sched.clear_stopped();
        core.limit = limit;
        let verdict = match dispatch(core, None) {
            Dispatch::Ended(kind, core) => Verdict {
                kind,
                core: Some(core),
            },
            // The baton is out among the process threads; park until the
            // run ends and the verdict brings it home.
            Dispatch::HandedOff => self
                .done_rx
                .recv()
                .expect("all simulation threads died without a verdict"),
            Dispatch::Resumed(_) => unreachable!("driver resumed as a process"),
        };
        self.core = verdict.core;
        match verdict.kind {
            VerdictKind::Completed => RunOutcome::Completed,
            VerdictKind::TimeLimit => RunOutcome::TimeLimit,
            VerdictKind::Stopped => RunOutcome::Stopped,
            VerdictKind::Deadlock => RunOutcome::Deadlock(self.core().blocked_report()),
            VerdictKind::ProcPanicked { name, at, msg } => {
                panic!("simulated process '{name}' panicked at t={at}: {msg}")
            }
            VerdictKind::EventPanicked { msg } => panic!("{msg}"),
        }
    }

    /// Run to completion (no time limit).
    pub fn run(&mut self) -> RunOutcome {
        self.run_until(Time::MAX)
    }

    /// Run `f` with simultaneous access to the world and the scheduler
    /// (between runs). Virtual time does not advance; spawns queued by the
    /// closure are leased immediately.
    pub fn with_parts<R>(&mut self, f: impl FnOnce(&mut W, &mut Scheduler<W>) -> R) -> R {
        let core = self.core_mut();
        let r = f(&mut core.world, &mut core.sched);
        core.drain_pending_spawns();
        r
    }

    /// Number of processes ever spawned.
    pub fn process_count(&self) -> usize {
        self.core().procs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_simulation_completes() {
        let mut sim = Simulation::new(());
        assert_eq!(sim.run(), RunOutcome::Completed);
        assert_eq!(sim.scheduler().now(), 0);
    }

    #[test]
    fn events_advance_time() {
        let mut sim = Simulation::new(Vec::<u64>::new());
        sim.scheduler().schedule_at(10, |w, s| w.push(s.now()));
        sim.scheduler().schedule_at(30, |w, s| w.push(s.now()));
        assert_eq!(sim.run(), RunOutcome::Completed);
        assert_eq!(sim.world(), &vec![10, 30]);
    }

    #[test]
    fn process_advance_and_world_calls() {
        let mut sim = Simulation::new(0u64);
        sim.spawn("p", 5, |ctx| {
            assert_eq!(ctx.now(), 5);
            ctx.advance(20);
            assert_eq!(ctx.now(), 25);
            let doubled = ctx.with_world(|w, _| {
                *w = 21;
                *w * 2
            });
            assert_eq!(doubled, 42);
        });
        assert_eq!(sim.run(), RunOutcome::Completed);
        assert_eq!(*sim.world(), 21);
        assert_eq!(sim.scheduler().now(), 25);
    }

    #[test]
    fn trigger_handshake_between_processes() {
        let mut sim = Simulation::new(Vec::<&'static str>::new());
        let t = sim.scheduler().new_trigger();
        sim.spawn("waiter", 0, move |ctx| {
            ctx.wait(t);
            let now = ctx.now();
            ctx.with_world(move |w, _| w.push("woken"));
            assert_eq!(now, 40);
        });
        sim.spawn("firer", 0, move |ctx| {
            ctx.advance(40);
            ctx.with_world(move |w, s| {
                w.push("firing");
                s.fire(t);
            });
        });
        assert_eq!(sim.run(), RunOutcome::Completed);
        assert_eq!(sim.world(), &vec!["firing", "woken"]);
    }

    #[test]
    fn wait_on_fired_trigger_returns_immediately() {
        let mut sim = Simulation::new(());
        let t = sim.scheduler().new_trigger();
        sim.scheduler().fire(t);
        sim.spawn("p", 0, move |ctx| {
            ctx.wait(t);
            assert_eq!(ctx.now(), 0);
        });
        assert_eq!(sim.run(), RunOutcome::Completed);
    }

    #[test]
    fn deadlock_detected_and_reported() {
        let mut sim = Simulation::new(());
        let t = sim.scheduler().new_trigger();
        sim.spawn("stuck", 0, move |ctx| {
            ctx.wait(t); // never fired
        });
        match sim.run() {
            RunOutcome::Deadlock(blocked) => {
                assert_eq!(blocked.len(), 1);
                assert_eq!(blocked[0].0, "stuck");
                assert!(blocked[0].1.contains("trigger"));
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn time_limit_stops_early() {
        let mut sim = Simulation::new(0u32);
        sim.scheduler().schedule_at(1_000, |w, _| *w += 1);
        assert_eq!(sim.run_until(500), RunOutcome::TimeLimit);
        assert_eq!(*sim.world(), 0);
        // Resuming past the limit executes the event.
        assert_eq!(sim.run_until(2_000), RunOutcome::Completed);
        assert_eq!(*sim.world(), 1);
    }

    #[test]
    fn time_limit_resumes_parked_process() {
        // A process parked mid-advance across a TimeLimit verdict must be
        // resumable by a later run (the baton finds its way back to it).
        let mut sim = Simulation::new(0u32);
        sim.spawn("sleeper", 0, |ctx| {
            ctx.advance(1_000);
            ctx.with_world(|w, _| *w += 1);
        });
        assert_eq!(sim.run_until(500), RunOutcome::TimeLimit);
        assert_eq!(*sim.world(), 0);
        assert_eq!(sim.run_until(2_000), RunOutcome::Completed);
        assert_eq!(*sim.world(), 1);
        assert_eq!(sim.scheduler().now(), 1_000);
    }

    #[test]
    fn stop_from_event() {
        let mut sim = Simulation::new(());
        sim.scheduler().schedule_at(10, |_, s| s.stop());
        sim.scheduler()
            .schedule_at(20, |_, _| panic!("must not run"));
        assert_eq!(sim.run(), RunOutcome::Stopped);
    }

    #[test]
    #[should_panic(expected = "panicked at t=0: boom")]
    fn process_panic_propagates() {
        let mut sim = Simulation::new(());
        sim.spawn("bad", 0, |_| panic!("boom"));
        let _ = sim.run();
    }

    #[test]
    fn process_panic_reports_name_time_and_payload() {
        // A panicking process must fail the simulation with the process
        // name, the virtual time of the panic, and the panic payload — and
        // its pooled worker must come back for reuse.
        let pool = crate::ProcessPool::new();
        let mut config = SimConfig::default();
        config.pool = pool.clone();
        let mut sim = Simulation::with_config((), config);
        sim.spawn("victim", 0, |ctx| {
            ctx.advance(1234);
            panic!("deliberate failure x={}", 42);
        });
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| sim.run()))
            .expect_err("simulation must fail");
        let msg = err
            .downcast_ref::<String>()
            .expect("driver panic carries a String");
        assert!(msg.contains("'victim'"), "missing process name: {msg}");
        assert!(msg.contains("t=1234"), "missing virtual time: {msg}");
        assert!(
            msg.contains("deliberate failure x=42"),
            "missing panic payload: {msg}"
        );
        drop(sim);
        // The worker that hosted the panicking process is returned cleanly.
        assert!(
            pool.wait_idle(1, std::time::Duration::from_secs(5)),
            "pooled worker not returned after process panic: {pool:?}"
        );
        assert_eq!(pool.threads_created(), 1);
        // And it is reusable: a fresh simulation on the same pool works.
        let mut config = SimConfig::default();
        config.pool = pool.clone();
        let mut sim = Simulation::with_config(0u32, config);
        sim.spawn("healthy", 0, |ctx| ctx.with_world(|w, _| *w = 7));
        assert_eq!(sim.run(), RunOutcome::Completed);
        assert_eq!(*sim.world(), 7);
        assert_eq!(
            pool.threads_created(),
            1,
            "second process reuses the worker"
        );
    }

    #[test]
    fn with_world_ref_reads_without_blocking_semantics_change() {
        let mut sim = Simulation::new(41u64);
        sim.spawn("reader", 3, |ctx| {
            // Borrowed (non-'static) captures are fine on the fast path.
            let local = [1u64, 2, 3];
            let sum: u64 = ctx.with_world_ref(|w, s| *w + s.now() + local.iter().sum::<u64>());
            assert_eq!(sum, 41 + 3 + 6);
            ctx.advance(7);
            let now = ctx.with_world_ref(|_, s| s.now());
            assert_eq!(now, 10);
        });
        assert_eq!(sim.run(), RunOutcome::Completed);
    }

    #[test]
    fn notify_wakes_all_waiters_in_order() {
        let mut sim = Simulation::new(Vec::<u32>::new());
        let n = sim.scheduler().new_notify();
        for i in 0..3u32 {
            sim.spawn(format!("w{i}"), 0, move |ctx| {
                let seen = ctx.with_world_ref(|_, s| s.notify_epoch(n));
                ctx.wait_notify(n, seen);
                ctx.with_world(move |w, _| w.push(i));
            });
        }
        sim.spawn("notifier", 0, move |ctx| {
            ctx.advance(100);
            ctx.with_world(move |_, s| s.notify(n));
        });
        assert_eq!(sim.run(), RunOutcome::Completed);
        assert_eq!(sim.world(), &vec![0, 1, 2]);
    }

    #[test]
    fn wait_until_rechecks_predicate() {
        let mut sim = Simulation::new(0u32);
        let n = sim.scheduler().new_notify();
        sim.spawn("consumer", 0, move |ctx| {
            ctx.wait_until(n, |w, _| *w >= 3);
            assert_eq!(ctx.now(), 30);
        });
        sim.spawn("producer", 0, move |ctx| {
            for _ in 0..3 {
                ctx.advance(10);
                ctx.with_world(move |w, s| {
                    *w += 1;
                    s.notify(n);
                });
            }
        });
        assert_eq!(sim.run(), RunOutcome::Completed);
    }

    #[test]
    fn dynamic_spawn_from_world_call() {
        let mut sim = Simulation::new(0u32);
        sim.spawn("parent", 0, |ctx| {
            ctx.with_world(|_, s| {
                s.spawn_process("child", 10, |ctx| {
                    assert_eq!(ctx.now(), 10);
                    ctx.with_world(|w, _| *w += 7);
                });
            });
        });
        assert_eq!(sim.run(), RunOutcome::Completed);
        assert_eq!(*sim.world(), 7);
        assert_eq!(sim.process_count(), 2);
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        // Two identical simulations must produce identical event traces.
        fn build_and_run() -> Vec<(u64, u32)> {
            let mut sim = Simulation::new(Vec::<(u64, u32)>::new());
            let n = sim.scheduler().new_notify();
            for i in 0..8u32 {
                sim.spawn(format!("p{i}"), (i as u64) * 3 % 5, move |ctx| {
                    for k in 0..4u64 {
                        ctx.advance((i as u64 * 7 + k * 13) % 17 + 1);
                        let now = ctx.now();
                        ctx.with_world(move |w, s| {
                            w.push((now, i));
                            s.notify(n);
                        });
                    }
                });
            }
            sim.run();
            sim.world().clone()
        }
        assert_eq!(build_and_run(), build_and_run());
    }
}
