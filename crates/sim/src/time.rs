//! Virtual time for the discrete-event simulation.
//!
//! Simulated time is an integer number of **nanoseconds** since simulation
//! start. All latency/bandwidth results reported by the benchmark harness are
//! derived from this clock, never from wall-clock time.

/// Virtual time in nanoseconds since simulation start.
pub type Time = u64;

/// Duration in virtual nanoseconds.
pub type Duration = u64;

/// One nanosecond.
pub const NANO: Duration = 1;
/// One microsecond in nanoseconds.
pub const MICRO: Duration = 1_000;
/// One millisecond in nanoseconds.
pub const MILLI: Duration = 1_000_000;
/// One second in nanoseconds.
pub const SEC: Duration = 1_000_000_000;

/// Convert a duration in (possibly fractional) microseconds to virtual time.
#[inline]
pub fn us(v: f64) -> Duration {
    (v * MICRO as f64).round() as Duration
}

/// Convert a duration in (possibly fractional) milliseconds to virtual time.
#[inline]
pub fn ms(v: f64) -> Duration {
    (v * MILLI as f64).round() as Duration
}

/// Convert a duration in (possibly fractional) seconds to virtual time.
#[inline]
pub fn secs(v: f64) -> Duration {
    (v * SEC as f64).round() as Duration
}

/// Express a virtual duration in fractional microseconds.
#[inline]
pub fn as_us(t: Duration) -> f64 {
    t as f64 / MICRO as f64
}

/// Express a virtual duration in fractional milliseconds.
#[inline]
pub fn as_ms(t: Duration) -> f64 {
    t as f64 / MILLI as f64
}

/// Express a virtual duration in fractional seconds.
#[inline]
pub fn as_secs(t: Duration) -> f64 {
    t as f64 / SEC as f64
}

/// Time needed to move `bytes` over a link of `gbps` gigabytes per second
/// (base-10 GB, matching how network/GPU link bandwidths are quoted).
///
/// Returns zero for zero-byte transfers; callers add per-message latency
/// separately (α-β model: `alpha + beta * size`).
#[inline]
pub fn transfer_time(bytes: u64, gbps: f64) -> Duration {
    if bytes == 0 || gbps <= 0.0 {
        return 0;
    }
    // gbps GB/s == gbps bytes/ns.
    (bytes as f64 / gbps).round() as Duration
}

/// Achieved bandwidth in MB/s (base-10) for `bytes` moved in `elapsed` time.
#[inline]
pub fn bandwidth_mbps(bytes: u64, elapsed: Duration) -> f64 {
    if elapsed == 0 {
        return f64::INFINITY;
    }
    // bytes/ns * 1e9 = bytes/s; / 1e6 = MB/s.
    bytes as f64 / elapsed as f64 * 1_000.0
}

/// Pretty-print a duration with an adaptive unit (for traces and harness
/// output).
pub fn fmt_dur(t: Duration) -> String {
    if t < 10 * MICRO {
        format!("{:.3}us", as_us(t))
    } else if t < 10 * MILLI {
        format!("{:.2}us", as_us(t))
    } else if t < 10 * SEC {
        format!("{:.3}ms", as_ms(t))
    } else {
        format!("{:.3}s", as_secs(t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_conversions_roundtrip() {
        assert_eq!(us(1.0), 1_000);
        assert_eq!(ms(1.0), 1_000_000);
        assert_eq!(secs(1.0), 1_000_000_000);
        assert_eq!(us(0.5), 500);
        assert!((as_us(1_500) - 1.5).abs() < 1e-12);
        assert!((as_ms(2_500_000) - 2.5).abs() < 1e-12);
        assert!((as_secs(3 * SEC) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn transfer_time_alpha_beta() {
        // 50 GB/s moves 50 bytes per ns.
        assert_eq!(transfer_time(50, 50.0), 1);
        assert_eq!(transfer_time(5_000_000, 50.0), 100_000); // 5 MB in 100 us
        assert_eq!(transfer_time(0, 50.0), 0);
        assert_eq!(transfer_time(123, 0.0), 0);
    }

    #[test]
    fn bandwidth_of_transfer_is_consistent() {
        let bytes = 4 << 20;
        let t = transfer_time(bytes, 12.5);
        let bw = bandwidth_mbps(bytes, t);
        // 12.5 GB/s == 12_500 MB/s.
        assert!((bw - 12_500.0).abs() / 12_500.0 < 0.01, "bw={bw}");
    }

    #[test]
    fn zero_elapsed_bandwidth_is_infinite() {
        assert!(bandwidth_mbps(10, 0).is_infinite());
    }

    #[test]
    fn fmt_dur_units() {
        assert!(fmt_dur(500).contains("us"));
        assert!(fmt_dur(5 * MILLI).contains("us") || fmt_dur(5 * MILLI).contains("ms"));
        assert!(fmt_dur(100 * MILLI).contains("ms"));
        assert!(fmt_dur(20 * SEC).ends_with('s'));
    }
}
