//! Thread-backed simulated processes and the execution baton.
//!
//! Each simulated process (one per PE in the runtime layers above) runs on
//! an OS thread **leased from a [`crate::ProcessPool`]**, and processes
//! execute strictly one at a time: a single *baton* — the boxed
//! [`Core`](crate::sim::Core) holding the world, the scheduler, and the
//! process table — is owned by exactly one thread at any moment, and only
//! the thread holding it may run. This gives process code natural
//! *blocking* semantics (`MPI_Recv` can simply not return until virtual
//! time has advanced to the message arrival) while keeping the whole
//! simulation deterministic and data-race free.
//!
//! The baton is also what makes the resume hot path fast: a thread that
//! holds it dispatches events **inline**. When a process calls
//! [`ProcCtx::advance`] and the next relevant event is its own wakeup (the
//! overwhelmingly common case), control never leaves the thread — no
//! context switch, no allocation, no syscall. Only when a *different*
//! process must run is the baton handed over, through a one-slot
//! [`rucx_compat::rendezvous`] cell (no queue, no per-message allocation).
//! World access is direct for the same reason: [`ProcCtx::with_world`]
//! (mutating) and [`ProcCtx::with_world_ref`] (read-only) call the closure
//! against the core this thread already holds.

#![allow(clippy::type_complexity)]

use std::sync::Arc;

use rucx_compat::channel::Sender;
use rucx_compat::rendezvous::{rendezvous, RendezvousReceiver, RendezvousSender};

use crate::pool::{Job, ProcessPool};
use crate::sched::{Notify, ProcId, Scheduler, Trigger};
use crate::sim::{dispatch, Core, Dispatch, Verdict, VerdictKind};
use crate::time::{Duration, Time};

/// A process body as stored until its first wakeup.
pub(crate) type Body<W> = Box<dyn FnOnce(&mut ProcCtx<W>) + Send + 'static>;

/// How a process yields the baton back to the dispatch loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum YieldKind {
    /// Wake me at this absolute virtual time.
    AdvanceTo(Time),
    /// Park me until the trigger fires.
    WaitTrigger(Trigger),
    /// Park me until the notify epoch moves past `seen`.
    WaitNotify(Notify, u64),
    /// Put me at the back of the runnable queue (same virtual time).
    YieldNow,
}

/// Internal marker unwound through process bodies when the simulation is
/// dropped while the process is still parked; the wrapper swallows it and
/// the pooled worker returns to its pool.
pub(crate) struct SimShutdown;

/// Handle a process body uses to interact with the simulation.
///
/// Obtained as the argument to the closure passed to
/// [`crate::Simulation::spawn`]. All methods may block (in wall-clock terms)
/// while other parts of the simulation run; in virtual-time terms,
/// [`ProcCtx::with_world`] is instantaneous while [`ProcCtx::advance`] and
/// the wait methods let virtual time pass.
pub struct ProcCtx<W> {
    pub(crate) id: ProcId,
    pub(crate) name: String,
    pub(crate) now: Time,
    /// Wakeup channel: the baton arrives here when this process is resumed.
    pub(crate) resume_rx: RendezvousReceiver<Box<Core<W>>>,
    /// Verdict channel back to the driver (run completion, panics).
    pub(crate) done_tx: Sender<Verdict<W>>,
    /// The baton. `Some` exactly while this process is the running one.
    pub(crate) core: Option<Box<Core<W>>>,
}

impl<W: Send + 'static> ProcCtx<W> {
    /// This process's id.
    pub fn id(&self) -> ProcId {
        self.id
    }

    /// This process's name (for traces and deadlock reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Current virtual time as of the last resume.
    #[inline]
    pub fn now(&self) -> Time {
        self.now
    }

    /// Park until the baton comes back; unwinds with [`SimShutdown`] if the
    /// simulation is dropped instead.
    fn recv_core(&self) -> Box<Core<W>> {
        match self.resume_rx.recv() {
            Ok(core) => core,
            Err(_) => std::panic::panic_any(SimShutdown),
        }
    }

    /// Register the wakeup condition for `kind`, then dispatch inline until
    /// this process is woken again (possibly without ever handing the baton
    /// to another thread).
    fn yield_and_wait(&mut self, kind: YieldKind) {
        let mut core = self.core.take().expect("yield while parked");
        let id = self.id;
        match kind {
            YieldKind::AdvanceTo(t) => {
                core.procs[id.index()].state = blocked_sleep(t);
                core.sched.schedule_wake(t, id);
            }
            YieldKind::YieldNow => {
                core.procs[id.index()].state = ProcState::Active;
                core.sched.runnable.push_back(id);
            }
            YieldKind::WaitTrigger(t) => {
                if core.sched.add_trigger_waiter(t, id) {
                    core.procs[id.index()].state = blocked_trigger(t.0);
                } else {
                    core.sched.runnable.push_back(id);
                }
            }
            YieldKind::WaitNotify(n, seen) => {
                if core.sched.add_notify_waiter(n, seen, id) {
                    core.procs[id.index()].state = blocked_notify(n.0);
                } else {
                    core.sched.runnable.push_back(id);
                }
            }
        }
        let core = loop {
            match dispatch(core, Some(id)) {
                // Our own wakeup was the next thing to run: zero-switch
                // resume, we still hold the baton.
                Dispatch::Resumed(core) => break core,
                // The baton went to another process; park until our wakeup
                // is dispatched and the baton is handed back to us.
                Dispatch::HandedOff => break self.recv_core(),
                // The run ended while we were parked (deadlock, stop, time
                // limit): return the baton to the driver and park. A later
                // `run` call may still resume us.
                Dispatch::Ended(kind, core) => {
                    let _ = self.done_tx.send(Verdict {
                        kind,
                        core: Some(core),
                    });
                    break self.recv_core();
                }
            }
        };
        self.now = core.sched.now();
        self.core = Some(core);
    }

    /// Let `dt` of virtual time pass (models local computation of known
    /// duration). Other processes and events run meanwhile.
    pub fn advance(&mut self, dt: Duration) {
        let target = self.now.saturating_add(dt);
        self.yield_and_wait(YieldKind::AdvanceTo(target));
        debug_assert!(self.now >= target);
    }

    /// Yield to other runnable processes at the same virtual time.
    pub fn yield_now(&mut self) {
        self.yield_and_wait(YieldKind::YieldNow);
    }

    /// Block until the trigger fires (returns immediately if already fired).
    pub fn wait(&mut self, t: Trigger) {
        self.yield_and_wait(YieldKind::WaitTrigger(t));
    }

    /// Block until the notify epoch differs from `seen`.
    ///
    /// Usage pattern (lost-wakeup free):
    /// ```ignore
    /// loop {
    ///     let (done, seen) = ctx.with_world(|w, s| (w.check(), s.notify_epoch(n)));
    ///     if done { break; }
    ///     ctx.wait_notify(n, seen);
    /// }
    /// ```
    pub fn wait_notify(&mut self, n: Notify, seen: u64) {
        self.yield_and_wait(YieldKind::WaitNotify(n, seen));
    }

    /// Run `f` against the world and scheduler at the current virtual time
    /// and return its result. Virtual time does not advance.
    ///
    /// This is the *mutating* world call: the closure may change model
    /// state, schedule events, fire triggers, or spawn processes. It runs
    /// directly against the core this thread holds — no boxing, no
    /// cross-thread handoff, no `Send`/`'static` bounds. Read-only lookups
    /// should prefer [`ProcCtx::with_world_ref`], which documents (and
    /// type-enforces) that nothing is mutated.
    pub fn with_world<R>(&mut self, f: impl FnOnce(&mut W, &mut Scheduler<W>) -> R) -> R {
        let core = self.core.as_mut().expect("world call while parked");
        let r = f(&mut core.world, &mut core.sched);
        core.drain_pending_spawns();
        r
    }

    /// Run a **read-only** access against the world and scheduler and
    /// return its result — the fast path for clock/config/state queries on
    /// the hot resume path. The shared borrow makes "cannot mutate, cannot
    /// spawn" part of the signature, so no spawn-drain bookkeeping runs.
    pub fn with_world_ref<R>(&mut self, f: impl FnOnce(&W, &Scheduler<W>) -> R) -> R {
        let core = self.core.as_ref().expect("world call while parked");
        f(&core.world, &core.sched)
    }

    /// Convenience: create a trigger via a world call.
    pub fn new_trigger(&mut self) -> Trigger {
        self.with_world(|_, s| s.new_trigger())
    }

    /// Convenience: wait until `pred` holds, re-checking whenever `n` is
    /// notified. The predicate check and the epoch snapshot happen in one
    /// world call, so no notification can be lost between them.
    pub fn wait_until<F>(&mut self, n: Notify, mut pred: F)
    where
        F: FnMut(&mut W, &mut Scheduler<W>) -> bool,
    {
        loop {
            let (done, seen) = self.with_world(|w, s| (pred(w, s), s.notify_epoch(n)));
            if done {
                return;
            }
            self.wait_notify(n, seen);
        }
    }
}

/// Driver-side record of one process.
pub(crate) struct ProcSlot<W> {
    pub name: String,
    /// Shared handle to the process's wakeup cell. `Arc` so the dispatch
    /// loop can clone a sender and then move the core *through* it (the
    /// original lives inside the core being sent).
    pub resume_tx: Arc<RendezvousSender<Box<Core<W>>>>,
    pub state: ProcState,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum ProcState {
    /// Not yet started or currently runnable/running.
    Active,
    /// Parked on a wait primitive (description for deadlock reports).
    Blocked(String),
    Finished,
}

pub(crate) fn blocked_sleep(t: Time) -> ProcState {
    ProcState::Blocked(format!("sleep until t={t}"))
}
pub(crate) fn blocked_trigger(id: u32) -> ProcState {
    ProcState::Blocked(format!("trigger #{id}"))
}
pub(crate) fn blocked_notify(id: u32) -> ProcState {
    ProcState::Blocked(format!("notify #{id}"))
}

/// Lease a pooled worker thread to back a simulated process.
///
/// The job spans the process's entire lifetime: it parks until the first
/// resume delivers the baton, runs the body under `catch_unwind`, and ends
/// by either dispatching onward (normal completion) or reporting a verdict
/// to the driver (panic) — after which the worker re-registers with the
/// pool. A simulation dropped mid-run disconnects the rendezvous cell,
/// which unwinds the body with [`SimShutdown`] — also returning the worker
/// to the pool.
pub(crate) fn lease_process<W: Send + 'static>(
    pool: &Arc<ProcessPool>,
    id: ProcId,
    name: String,
    stack_size: usize,
    done_tx: Sender<Verdict<W>>,
    body: Body<W>,
) -> ProcSlot<W> {
    let (resume_tx, resume_rx) = rendezvous::<Box<Core<W>>>();
    let pname = name.clone();
    let job: Job = Box::new(move || {
        // Wait for the first resume before running the body. A simulation
        // torn down before this process ever ran lands in the `Err` arm.
        let core = match resume_rx.recv() {
            Ok(core) => core,
            Err(_) => return,
        };
        let mut ctx = ProcCtx {
            id,
            name: pname,
            now: core.sched.now(),
            resume_rx,
            done_tx,
            core: Some(core),
        };
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut ctx)));
        match result {
            Ok(()) => {
                // Body finished while holding the baton: mark ourselves
                // done and keep dispatching inline until the baton moves on
                // or the run ends.
                let mut core = ctx.core.take().expect("process finished while parked");
                core.procs[id.index()].state = ProcState::Finished;
                match dispatch(core, None) {
                    Dispatch::HandedOff => {}
                    Dispatch::Ended(kind, core) => {
                        let _ = ctx.done_tx.send(Verdict {
                            kind,
                            core: Some(core),
                        });
                    }
                    Dispatch::Resumed(_) => unreachable!("resumed a finished process"),
                }
            }
            Err(payload) => {
                if payload.downcast_ref::<SimShutdown>().is_some() {
                    // Simulation dropped while we were parked: finish the
                    // job quietly; the worker returns to the pool.
                    return;
                }
                let msg = panic_message(payload.as_ref());
                match ctx.core.take() {
                    // The body itself panicked (it held the baton): fail
                    // the run with process name, virtual time, and payload.
                    Some(mut core) => {
                        core.procs[id.index()].state = ProcState::Finished;
                        let at = core.sched.now();
                        let _ = ctx.done_tx.send(Verdict {
                            kind: VerdictKind::ProcPanicked {
                                name: ctx.name.clone(),
                                at,
                                msg,
                            },
                            core: Some(core),
                        });
                    }
                    // The panic came from inside the dispatch loop (an
                    // event closure blew up) and took the core with it;
                    // report what we know so the driver can re-panic.
                    None => {
                        let _ = ctx.done_tx.send(Verdict {
                            kind: VerdictKind::EventPanicked { msg },
                            core: None,
                        });
                    }
                }
            }
        }
    });
    pool.lease(stack_size)
        .send(job)
        .unwrap_or_else(|_| panic!("pooled worker for process '{name}' vanished"));
    ProcSlot {
        name,
        resume_tx: Arc::new(resume_tx),
        state: ProcState::Active,
    }
}

pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}
