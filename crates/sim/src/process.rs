//! Thread-backed simulated processes.
//!
//! Each simulated process (one per PE in the runtime layers above) is an OS
//! thread that runs **strictly one at a time** under a rendezvous protocol
//! with the simulation driver. This gives process code natural *blocking*
//! semantics — `MPI_Recv` can simply not return until virtual time has
//! advanced to the message arrival — while keeping the whole simulation
//! deterministic and data-race free: the world is only ever touched from the
//! driver thread, via [`ProcCtx::with_world`].

#![allow(clippy::type_complexity)]

use rucx_compat::channel::{unbounded, Receiver, Sender};

use crate::sched::{Notify, ProcId, Scheduler, Trigger};
use crate::time::{Duration, Time};

/// Message from the driver to a process thread.
pub(crate) enum ResumeMsg {
    /// Continue running; virtual time is `now`.
    Resume { now: Time },
    /// A world call submitted by this process has completed.
    CallDone,
}

/// How a process yielded back to the driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum YieldKind {
    /// Wake me at this absolute virtual time.
    AdvanceTo(Time),
    /// Park me until the trigger fires.
    WaitTrigger(Trigger),
    /// Park me until the notify epoch moves past `seen`.
    WaitNotify(Notify, u64),
    /// Put me at the back of the runnable queue (same virtual time).
    YieldNow,
}

/// Message from a process thread to the driver.
pub(crate) enum ProcMsg<W> {
    /// Execute this closure on the world, then reply `CallDone`.
    Call(Box<dyn FnOnce(&mut W, &mut Scheduler<W>) + Send>),
    /// The process yields; driver decides when to resume it.
    Yield(YieldKind),
    /// The process body returned normally.
    Done,
    /// The process body panicked; message for diagnostics.
    Panicked(String),
}

/// Internal marker unwound through process bodies when the simulation is
/// dropped while the process is still parked; the wrapper swallows it.
pub(crate) struct SimShutdown;

/// Handle a process body uses to interact with the simulation.
///
/// Obtained as the argument to the closure passed to
/// [`crate::Simulation::spawn`]. All methods may block (in wall-clock terms)
/// while other parts of the simulation run; in virtual-time terms,
/// [`ProcCtx::with_world`] is instantaneous while [`ProcCtx::advance`] and
/// the wait methods let virtual time pass.
pub struct ProcCtx<W> {
    pub(crate) id: ProcId,
    pub(crate) name: String,
    pub(crate) now: Time,
    pub(crate) resume_rx: Receiver<ResumeMsg>,
    pub(crate) cmd_tx: Sender<ProcMsg<W>>,
}

impl<W> ProcCtx<W> {
    /// This process's id.
    pub fn id(&self) -> ProcId {
        self.id
    }

    /// This process's name (for traces and deadlock reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Current virtual time as of the last resume.
    #[inline]
    pub fn now(&self) -> Time {
        self.now
    }

    fn send(&self, msg: ProcMsg<W>) {
        if self.cmd_tx.send(msg).is_err() {
            // Driver is gone (simulation dropped): unwind quietly.
            std::panic::panic_any(SimShutdown);
        }
    }

    fn recv(&self) -> ResumeMsg {
        match self.resume_rx.recv() {
            Ok(m) => m,
            Err(_) => std::panic::panic_any(SimShutdown),
        }
    }

    fn yield_and_wait(&mut self, kind: YieldKind) {
        self.send(ProcMsg::Yield(kind));
        match self.recv() {
            ResumeMsg::Resume { now } => self.now = now,
            ResumeMsg::CallDone => unreachable!("CallDone while yielded"),
        }
    }

    /// Let `dt` of virtual time pass (models local computation of known
    /// duration). Other processes and events run meanwhile.
    pub fn advance(&mut self, dt: Duration) {
        let target = self.now.saturating_add(dt);
        self.yield_and_wait(YieldKind::AdvanceTo(target));
        debug_assert!(self.now >= target);
    }

    /// Yield to other runnable processes at the same virtual time.
    pub fn yield_now(&mut self) {
        self.yield_and_wait(YieldKind::YieldNow);
    }

    /// Block until the trigger fires (returns immediately if already fired).
    pub fn wait(&mut self, t: Trigger) {
        self.yield_and_wait(YieldKind::WaitTrigger(t));
    }

    /// Block until the notify epoch differs from `seen`.
    ///
    /// Usage pattern (lost-wakeup free):
    /// ```ignore
    /// loop {
    ///     let (done, seen) = ctx.with_world(|w, s| (w.check(), s.notify_epoch(n)));
    ///     if done { break; }
    ///     ctx.wait_notify(n, seen);
    /// }
    /// ```
    pub fn wait_notify(&mut self, n: Notify, seen: u64) {
        self.yield_and_wait(YieldKind::WaitNotify(n, seen));
    }

    /// Run `f` against the world and scheduler on the driver thread, at the
    /// current virtual time, and return its result. Virtual time does not
    /// advance.
    pub fn with_world<R, F>(&mut self, f: F) -> R
    where
        R: Send + 'static,
        F: FnOnce(&mut W, &mut Scheduler<W>) -> R + Send + 'static,
    {
        let slot = std::sync::Arc::new(rucx_compat::sync::Mutex::new(None::<R>));
        let slot2 = slot.clone();
        self.send(ProcMsg::Call(Box::new(move |w, s| {
            *slot2.lock() = Some(f(w, s));
        })));
        match self.recv() {
            ResumeMsg::CallDone => {}
            ResumeMsg::Resume { .. } => unreachable!("Resume while awaiting call"),
        }
        let r = slot.lock().take().expect("world call did not produce a result");
        r
    }

    /// Convenience: create a trigger via a world call.
    pub fn new_trigger(&mut self) -> Trigger {
        self.with_world(|_, s| s.new_trigger())
    }

    /// Convenience: wait until `pred` holds, re-checking whenever `n` is
    /// notified. `pred` runs on the driver thread; the predicate check and
    /// the epoch snapshot happen in one world call, so no notification can
    /// be lost between them.
    pub fn wait_until<F>(&mut self, n: Notify, pred: F)
    where
        F: FnMut(&mut W, &mut Scheduler<W>) -> bool + Send + 'static,
    {
        let pred = std::sync::Arc::new(rucx_compat::sync::Mutex::new(pred));
        loop {
            let p = pred.clone();
            let (done, seen) = self.with_world(move |w, s| ((p.lock())(w, s), s.notify_epoch(n)));
            if done {
                return;
            }
            self.wait_notify(n, seen);
        }
    }
}

/// Driver-side record of one process.
pub(crate) struct ProcSlot<W> {
    pub name: String,
    pub resume_tx: Sender<ResumeMsg>,
    pub cmd_rx: Receiver<ProcMsg<W>>,
    pub join: Option<std::thread::JoinHandle<()>>,
    pub state: ProcState,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum ProcState {
    /// Not yet started or currently runnable/running.
    Active,
    /// Parked on a wait primitive (description for deadlock reports).
    Blocked(String),
    Finished,
}

/// Spawn the OS thread backing a simulated process.
pub(crate) fn spawn_thread<W: 'static>(
    id: ProcId,
    name: String,
    stack_size: usize,
    body: Box<dyn FnOnce(&mut ProcCtx<W>) + Send + 'static>,
) -> ProcSlot<W> {
    let (resume_tx, resume_rx) = unbounded::<ResumeMsg>();
    let (cmd_tx, cmd_rx) = unbounded::<ProcMsg<W>>();
    let thread_name = format!("sim:{name}");
    let cmd_tx2 = cmd_tx.clone();
    let pname = name.clone();
    let join = std::thread::Builder::new()
        .name(thread_name)
        .stack_size(stack_size)
        .spawn(move || {
            // Wait for the first resume before running the body.
            let now = match resume_rx.recv() {
                Ok(ResumeMsg::Resume { now }) => now,
                _ => return,
            };
            let mut ctx = ProcCtx {
                id,
                name: pname,
                now,
                resume_rx,
                cmd_tx: cmd_tx2,
            };
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                body(&mut ctx);
            }));
            match result {
                Ok(()) => {
                    let _ = ctx.cmd_tx.send(ProcMsg::Done);
                }
                Err(payload) => {
                    if payload.downcast_ref::<SimShutdown>().is_some() {
                        // Simulation dropped while we were parked: exit quietly.
                        return;
                    }
                    let msg = panic_message(payload.as_ref());
                    let _ = ctx.cmd_tx.send(ProcMsg::Panicked(msg));
                }
            }
        })
        .expect("failed to spawn simulated process thread");
    ProcSlot {
        name,
        resume_tx,
        cmd_rx,
        join: Some(join),
        state: ProcState::Active,
    }
}

pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}
