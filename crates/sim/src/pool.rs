//! Pooled OS threads backing simulated processes.
//!
//! A `Simulation` at production scale hosts hundreds to thousands of
//! simulated PEs, each backed by an OS thread that is parked almost all the
//! time (execution is strictly serial: one baton, one running thread). Benchmarks
//! like `jacobi_figures` construct hundreds of `Simulation`s back to back —
//! at 256 simulated nodes that used to mean 1536 `std::thread::spawn`s per
//! construction. This module amortizes that: [`Simulation::spawn`] leases a
//! worker from a [`ProcessPool`] (by default the workspace-global one), and
//! the worker returns itself to the pool when its process finishes, when
//! the process panics, or when the `Simulation` is dropped with the process
//! still parked.
//!
//! Workers are keyed by stack size, since that is fixed at OS-thread
//! creation; simulations configured with different
//! [`crate::SimConfig::stack_size`] values simply populate different shards.
//! Pool identity has no effect on simulation semantics — a lease carries no
//! state from its previous process — so determinism is untouched.
//!
//! [`Simulation::spawn`]: crate::Simulation::spawn

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, Weak};

use rucx_compat::channel::{unbounded, Receiver, Sender};
use rucx_compat::sync::Mutex;

/// A unit of work handed to a pooled worker: the entire lifetime of one
/// simulated process (first resume through completion, panic, or teardown).
pub(crate) type Job = Box<dyn FnOnce() + Send + 'static>;

/// A pool of reusable OS threads for simulated processes.
///
/// Obtain the shared one with [`ProcessPool::global`] (the default in
/// [`crate::SimConfig`]), or create a private instance with
/// [`ProcessPool::new`] when a test needs exact thread accounting.
pub struct ProcessPool {
    /// Idle workers, sharded by stack size. Each entry is the job-submission
    /// sender of one parked worker thread.
    idle: Mutex<HashMap<usize, Vec<Sender<Job>>>>,
    threads_created: AtomicU64,
    leases: AtomicU64,
}

impl ProcessPool {
    /// Create a private pool (tests, specialised drivers).
    pub fn new() -> Arc<Self> {
        Arc::new(ProcessPool {
            idle: Mutex::new(HashMap::new()),
            threads_created: AtomicU64::new(0),
            leases: AtomicU64::new(0),
        })
    }

    /// The workspace-global pool every `Simulation` uses by default.
    pub fn global() -> Arc<Self> {
        static GLOBAL: OnceLock<Arc<ProcessPool>> = OnceLock::new();
        GLOBAL.get_or_init(ProcessPool::new).clone()
    }

    /// Lease a worker with the given stack size, reusing an idle one when
    /// possible. The returned sender must be given exactly one job; the
    /// worker runs it and then re-registers itself as idle.
    pub(crate) fn lease(self: &Arc<Self>, stack_size: usize) -> Sender<Job> {
        self.leases.fetch_add(1, Ordering::Relaxed);
        if let Some(tx) = self
            .idle
            .lock()
            .get_mut(&stack_size)
            .and_then(|shard| shard.pop())
        {
            return tx;
        }
        let n = self.threads_created.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = unbounded::<Job>();
        let pool = Arc::downgrade(self);
        std::thread::Builder::new()
            .name(format!("sim-pool-{n}"))
            .stack_size(stack_size)
            .spawn(move || worker_main(pool, stack_size, rx))
            .expect("failed to spawn pooled process thread");
        tx
    }

    fn release(&self, stack_size: usize, tx: Sender<Job>) {
        self.idle.lock().entry(stack_size).or_default().push(tx);
    }

    /// Number of OS threads this pool has ever created.
    pub fn threads_created(&self) -> u64 {
        self.threads_created.load(Ordering::Relaxed)
    }

    /// Number of workers leased out so far (reuses included).
    pub fn leases(&self) -> u64 {
        self.leases.load(Ordering::Relaxed)
    }

    /// Number of workers currently parked in the pool.
    pub fn idle_workers(&self) -> usize {
        self.idle.lock().values().map(Vec::len).sum()
    }

    /// Wait until at least `n` workers are idle, polling up to `timeout`.
    ///
    /// Workers return to the pool asynchronously (a finished process sends
    /// its final message to the driver *before* its worker re-registers, and
    /// teardown unwinds parked processes from `Simulation::drop` without
    /// joining them), so tests that assert on reuse need a settling point.
    /// Returns whether the target was reached.
    pub fn wait_idle(&self, n: usize, timeout: std::time::Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        while self.idle_workers() < n {
            if std::time::Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        true
    }
}

impl std::fmt::Debug for ProcessPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProcessPool")
            .field("threads_created", &self.threads_created())
            .field("leases", &self.leases())
            .field("idle_workers", &self.idle_workers())
            .finish()
    }
}

/// Worker thread body: run one job at a time, re-registering with the pool
/// between jobs. The worker deliberately holds no `Sender` for its own job
/// channel while idle — the only one lives in the pool's idle shard — so
/// dropping the pool disconnects the channel and the worker exits.
fn worker_main(pool: Weak<ProcessPool>, stack_size: usize, rx: Receiver<Job>) {
    while let Ok(job) = rx.recv() {
        // Jobs contain their own panic handling; this catch is a backstop
        // so a worker can never die with the pool still referencing it.
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
        match pool.upgrade() {
            Some(pool) => pool.release(stack_size, rx.sender()),
            None => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn run_job(pool: &Arc<ProcessPool>, stack: usize, job: impl FnOnce() + Send + 'static) {
        pool.lease(stack)
            .send(Box::new(job))
            .expect("worker vanished");
    }

    #[test]
    fn leases_reuse_idle_workers() {
        let pool = ProcessPool::new();
        let stack = 64 * 1024;
        for _ in 0..8 {
            run_job(&pool, stack, || {});
            assert!(pool.wait_idle(1, Duration::from_secs(2)));
        }
        assert_eq!(pool.threads_created(), 1, "sequential jobs share a thread");
        assert_eq!(pool.leases(), 8);
    }

    #[test]
    fn distinct_stack_sizes_get_distinct_workers() {
        let pool = ProcessPool::new();
        run_job(&pool, 64 * 1024, || {});
        run_job(&pool, 128 * 1024, || {});
        assert!(pool.wait_idle(2, Duration::from_secs(2)));
        assert_eq!(pool.threads_created(), 2);
    }

    #[test]
    fn panicking_job_returns_worker_to_pool() {
        let pool = ProcessPool::new();
        let stack = 64 * 1024;
        run_job(&pool, stack, || panic!("job blew up"));
        assert!(pool.wait_idle(1, Duration::from_secs(2)));
        run_job(&pool, stack, || {});
        assert!(pool.wait_idle(1, Duration::from_secs(2)));
        assert_eq!(pool.threads_created(), 1);
    }
}
