//! Structured, deterministic event tracing (`rucx-trace`).
//!
//! A per-world ring-buffered sink records typed spans and instants stamped
//! with virtual time, PE, and a message id, across every layer of the stack
//! (`ucp.*`, `fabric.*`, `charm.*`, `ampi.*`, `charm4py.*`). The sink lives
//! inside the [`crate::Scheduler`] so every emission site — event closures,
//! world calls, protocol state machines — already has it in hand.
//!
//! Design constraints, in order:
//!
//! 1. **Deterministic.** Events carry virtual time only; buffer contents and
//!    the serialized Chrome-trace JSON are a pure function of
//!    `(seed, config)`. No wall clock, no addresses, no hashing order.
//! 2. **Zero-cost when disabled.** The sink starts disabled; every emission
//!    helper first tests one `bool`. The resume hot path
//!    (`ProcCtx::advance`) does not touch the sink at all. Compiling
//!    `rucx-sim` with `--no-default-features` removes the `trace` feature
//!    and turns every helper into an empty `#[inline]` stub.
//! 3. **Bounded.** The ring buffer drops the *oldest* events past capacity
//!    and counts the drops, so long runs cannot exhaust memory and the tail
//!    of a run (usually what you want to look at) survives.
//!
//! Serialization targets the Chrome trace-event format (the JSON array
//! flavour), so any figure run can be opened in `chrome://tracing` or
//! [Perfetto](https://ui.perfetto.dev): spans become `"ph": "X"` complete
//! events, instants `"ph": "i"`, `pid` is always 0 and `tid` is the PE.

#[cfg(feature = "trace")]
use std::collections::VecDeque;

use rucx_compat::json::{JsonObject, ToJson};

use crate::time::{Duration, Time};

/// Default ring capacity: enough for a figure run's interesting tail
/// without letting pathological loops grow without bound.
pub const DEFAULT_CAPACITY: usize = 1 << 16;

/// Event flavour, mirroring the Chrome trace-event phases we emit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// A point event (`"ph": "i"`).
    Instant,
    /// A complete span with an explicit duration (`"ph": "X"`).
    Complete(Duration),
}

/// One trace record. `name` is a `&'static str` from the emitting layer's
/// event taxonomy (e.g. `"ucp.rndv.rts"`), never a formatted string — both
/// for cost and so the set of names is greppable.
#[derive(Debug, Clone, Copy)]
pub struct TraceEvent {
    pub name: &'static str,
    pub phase: Phase,
    /// Virtual start time of the event.
    pub ts: Time,
    /// Processing element (simulated process index) the event belongs to.
    pub pe: u32,
    /// Correlation id: message/RTS/sequence id where the layer has one,
    /// 0 otherwise.
    pub id: u64,
    /// One free payload word (message size, queue depth…).
    pub arg: u64,
}

impl TraceEvent {
    /// Span duration (0 for instants).
    pub fn dur(&self) -> Duration {
        match self.phase {
            Phase::Instant => 0,
            Phase::Complete(d) => d,
        }
    }

    /// Event category for viewers: the layer prefix before the first `.`.
    pub fn category(&self) -> &'static str {
        match self.name.find('.') {
            Some(i) => &self.name[..i],
            None => self.name,
        }
    }
}

impl ToJson for TraceEvent {
    fn write_json(&self, out: &mut String) {
        // Chrome trace format: ts/dur are in microseconds; fractional
        // values are accepted, which preserves the simulator's ns clock.
        let ts_us = self.ts as f64 / 1_000.0;
        let o = JsonObject::new(out)
            .field("name", self.name)
            .field("cat", self.category())
            .field(
                "ph",
                match self.phase {
                    Phase::Instant => "i",
                    Phase::Complete(_) => "X",
                },
            )
            .field("ts", &ts_us)
            .field("pid", &0u32)
            .field("tid", &self.pe)
            .field("id", &self.id)
            .field("arg", &self.arg);
        match self.phase {
            Phase::Instant => o.field("s", "t").finish(),
            Phase::Complete(d) => {
                let dur_us = d as f64 / 1_000.0;
                o.field("dur", &dur_us).finish()
            }
        }
    }
}

/// Ring-buffered trace sink. Owned by the [`crate::Scheduler`]; reachable
/// from every emission site as `sched.trace`.
#[derive(Debug, Default)]
pub struct TraceSink {
    #[cfg(feature = "trace")]
    inner: Option<Box<Ring>>,
}

#[cfg(feature = "trace")]
#[derive(Debug)]
struct Ring {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
    next_id: u64,
}

impl TraceSink {
    pub fn new() -> Self {
        Self::default()
    }

    /// Enable tracing with the given ring capacity (0 means
    /// [`DEFAULT_CAPACITY`]). Clears any previously recorded events.
    #[cfg(feature = "trace")]
    pub fn enable(&mut self, capacity: usize) {
        let capacity = if capacity == 0 {
            DEFAULT_CAPACITY
        } else {
            capacity
        };
        self.inner = Some(Box::new(Ring {
            events: VecDeque::with_capacity(capacity.min(1 << 20)),
            capacity,
            dropped: 0,
            next_id: 1,
        }));
    }

    #[cfg(not(feature = "trace"))]
    pub fn enable(&mut self, _capacity: usize) {}

    /// Disable tracing and drop the buffer.
    pub fn disable(&mut self) {
        #[cfg(feature = "trace")]
        {
            self.inner = None;
        }
    }

    /// Whether events are currently being recorded. Hot paths branch on
    /// this before doing any argument computation.
    #[inline]
    pub fn enabled(&self) -> bool {
        #[cfg(feature = "trace")]
        {
            self.inner.is_some()
        }
        #[cfg(not(feature = "trace"))]
        {
            false
        }
    }

    /// Mint a fresh correlation id (deterministic: a per-sink counter).
    /// Returns 0 when disabled, which emission sites pass through.
    #[inline]
    pub fn mint_id(&mut self) -> u64 {
        #[cfg(feature = "trace")]
        if let Some(r) = &mut self.inner {
            let id = r.next_id;
            r.next_id += 1;
            return id;
        }
        0
    }

    /// Record a point event at `ts`.
    #[inline]
    pub fn instant(&mut self, name: &'static str, ts: Time, pe: u32, id: u64, arg: u64) {
        #[cfg(feature = "trace")]
        if let Some(r) = &mut self.inner {
            r.push(TraceEvent {
                name,
                phase: Phase::Instant,
                ts,
                pe,
                id,
                arg,
            });
        }
        #[cfg(not(feature = "trace"))]
        {
            let _ = (name, ts, pe, id, arg);
        }
    }

    /// Record a complete span `[start, end]` (clamped to start if reversed).
    #[inline]
    pub fn span(&mut self, name: &'static str, start: Time, end: Time, pe: u32, id: u64, arg: u64) {
        #[cfg(feature = "trace")]
        if let Some(r) = &mut self.inner {
            r.push(TraceEvent {
                name,
                phase: Phase::Complete(end.saturating_sub(start)),
                ts: start,
                pe,
                id,
                arg,
            });
        }
        #[cfg(not(feature = "trace"))]
        {
            let _ = (name, start, end, pe, id, arg);
        }
    }

    /// Recorded events, oldest first. Empty when disabled.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> + '_ {
        #[cfg(feature = "trace")]
        {
            self.inner.iter().flat_map(|r| r.events.iter())
        }
        #[cfg(not(feature = "trace"))]
        {
            std::iter::empty::<&TraceEvent>()
        }
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        #[cfg(feature = "trace")]
        {
            self.inner.as_ref().map_or(0, |r| r.events.len())
        }
        #[cfg(not(feature = "trace"))]
        {
            0
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// How many events were evicted from the ring.
    pub fn dropped(&self) -> u64 {
        #[cfg(feature = "trace")]
        {
            self.inner.as_ref().map_or(0, |r| r.dropped)
        }
        #[cfg(not(feature = "trace"))]
        {
            0
        }
    }

    /// Forget recorded events (keeps the sink enabled and the id counter —
    /// clearing must not make later ids collide with earlier ones).
    pub fn clear(&mut self) {
        #[cfg(feature = "trace")]
        if let Some(r) = &mut self.inner {
            r.events.clear();
            r.dropped = 0;
        }
    }

    /// Serialize the buffer as a Chrome trace-event JSON document (the
    /// object-with-`traceEvents` flavour, plus drop accounting metadata).
    /// Byte-identical for identical buffers.
    pub fn to_chrome_json(&self) -> String {
        let events: Vec<TraceEvent> = self.events().copied().collect();
        let mut s = String::new();
        JsonObject::new(&mut s)
            .field("traceEvents", &events)
            .field("displayTimeUnit", "ns")
            .field("dropped", &self.dropped())
            .finish();
        s
    }
}

/// Merge several sinks' buffers into one deterministic Chrome trace
/// document. Events are sorted by `(ts, pe, name, id, arg, dur)`, so the
/// output is a pure function of the *multiset* of recorded events — not
/// of how they were distributed across sinks or of intra-sink order. The
/// sharded driver uses this to produce shard-count-invariant traces from
/// its per-shard sinks.
pub fn merge_chrome_json<'a>(sinks: impl IntoIterator<Item = &'a TraceSink>) -> String {
    let mut events: Vec<TraceEvent> = Vec::new();
    let mut dropped = 0u64;
    for sink in sinks {
        events.extend(sink.events().copied());
        dropped += sink.dropped();
    }
    events.sort_by(|x, y| {
        (x.ts, x.pe, x.name, x.id, x.arg, x.dur()).cmp(&(y.ts, y.pe, y.name, y.id, y.arg, y.dur()))
    });
    let mut s = String::new();
    JsonObject::new(&mut s)
        .field("traceEvents", &events)
        .field("displayTimeUnit", "ns")
        .field("dropped", &dropped)
        .finish();
    s
}

#[cfg(feature = "trace")]
impl Ring {
    #[inline]
    fn push(&mut self, ev: TraceEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(ev);
    }
}

#[cfg(all(test, feature = "trace"))]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_records_nothing() {
        let mut t = TraceSink::new();
        assert!(!t.enabled());
        t.instant("ucp.eager", 10, 0, 0, 64);
        t.span("fabric.link.busy", 5, 9, 1, 7, 64);
        assert_eq!(t.len(), 0);
        assert_eq!(t.mint_id(), 0);
        assert_eq!(
            t.to_chrome_json(),
            r#"{"traceEvents": [], "displayTimeUnit": "ns", "dropped": 0}"#
        );
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let mut t = TraceSink::new();
        t.enable(4);
        for i in 0..10u64 {
            t.instant("x", i, 0, i, 0);
        }
        assert_eq!(t.len(), 4);
        assert_eq!(t.dropped(), 6);
        let ids: Vec<u64> = t.events().map(|e| e.id).collect();
        assert_eq!(ids, vec![6, 7, 8, 9]);
    }

    #[test]
    fn chrome_json_shape() {
        let mut t = TraceSink::new();
        t.enable(16);
        t.span("ucp.rndv.rts", 1_000, 3_500, 2, 42, 4096);
        t.instant("charm.sched.deliver", 4_000, 2, 42, 0);
        let j = t.to_chrome_json();
        assert!(j.contains(r#""name": "ucp.rndv.rts""#), "{j}");
        assert!(j.contains(r#""cat": "ucp""#), "{j}");
        assert!(j.contains(r#""ph": "X""#), "{j}");
        assert!(j.contains(r#""dur": 2.5"#), "{j}");
        assert!(j.contains(r#""ph": "i""#), "{j}");
        assert!(j.contains(r#""tid": 2"#), "{j}");
        // ts is microseconds: 1000 ns -> 1.0 us.
        assert!(j.contains(r#""ts": 1.0"#), "{j}");
    }

    #[test]
    fn mint_id_is_sequential_and_survives_clear() {
        let mut t = TraceSink::new();
        t.enable(8);
        assert_eq!(t.mint_id(), 1);
        assert_eq!(t.mint_id(), 2);
        t.instant("a", 0, 0, 0, 0);
        t.clear();
        assert_eq!(t.len(), 0);
        assert_eq!(t.mint_id(), 3);
    }

    #[test]
    fn identical_buffers_serialize_identically() {
        let build = || {
            let mut t = TraceSink::new();
            t.enable(64);
            for i in 0..20u64 {
                let id = t.mint_id();
                t.span(
                    "ucp.pipeline.chunk",
                    i * 100,
                    i * 100 + 37,
                    (i % 4) as u32,
                    id,
                    512,
                );
            }
            t.to_chrome_json()
        };
        assert_eq!(build(), build());
    }
}
