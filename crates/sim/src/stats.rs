//! Lightweight measurement helpers shared by the benchmark harnesses.

use rucx_compat::rng::splitmix64;

use crate::time::Duration;

/// Cap on retained percentile samples: below it [`DurationStats`] keeps
/// every sample (exact percentiles), above it a deterministic reservoir.
pub const RESERVOIR_CAP: usize = 4096;

/// Online accumulator for a series of duration samples.
///
/// Count/sum/min/max are exact regardless of volume. Percentiles come from
/// a retained sample set: exact while `count <= RESERVOIR_CAP`, and a
/// deterministic Algorithm-R reservoir beyond that (replacement indices are
/// drawn from a fixed-seed splitmix64 stream, so two identical runs keep
/// identical reservoirs).
#[derive(Debug, Clone)]
pub struct DurationStats {
    count: u64,
    sum: u128,
    min: Option<Duration>,
    max: Option<Duration>,
    samples: Vec<Duration>,
    rng_state: u64,
}

impl Default for DurationStats {
    fn default() -> Self {
        DurationStats {
            count: 0,
            sum: 0,
            min: None,
            max: None,
            samples: Vec::new(),
            rng_state: 0x9e37_79b9_7f4a_7c15,
        }
    }
}

impl DurationStats {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample.
    pub fn record(&mut self, d: Duration) {
        self.count += 1;
        self.sum += d as u128;
        self.min = Some(self.min.map_or(d, |m| m.min(d)));
        self.max = Some(self.max.map_or(d, |m| m.max(d)));
        if self.samples.len() < RESERVOIR_CAP {
            self.samples.push(d);
        } else {
            // Algorithm R with a deterministic stream: each arrival takes a
            // reservoir slot with probability CAP/count.
            let j = splitmix64(&mut self.rng_state) % self.count;
            if (j as usize) < RESERVOIR_CAP {
                self.samples[j as usize] = d;
            }
        }
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean sample in nanoseconds (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    pub fn min(&self) -> Option<Duration> {
        self.min
    }

    pub fn max(&self) -> Option<Duration> {
        self.max
    }

    pub fn total(&self) -> u128 {
        self.sum
    }

    /// True while the retained sample set contains *every* recorded sample
    /// (percentiles are exact, not estimated).
    pub fn exact(&self) -> bool {
        self.count as usize == self.samples.len()
    }

    /// The `p`-th percentile (0..=100) by nearest rank over the retained
    /// samples. `None` if no samples were recorded.
    pub fn percentile(&self, p: f64) -> Option<Duration> {
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let rank = (p.clamp(0.0, 100.0) / 100.0 * (sorted.len() - 1) as f64).round() as usize;
        Some(sorted[rank])
    }

    /// Median (50th percentile).
    pub fn median(&self) -> Option<Duration> {
        self.percentile(50.0)
    }

    /// 99th percentile.
    pub fn p99(&self) -> Option<Duration> {
        self.percentile(99.0)
    }

    /// Merge another accumulator into this one. Exact fields combine
    /// exactly; the percentile reservoirs concatenate, and if the result
    /// overflows [`RESERVOIR_CAP`] it is thinned by a deterministic stride
    /// so both inputs stay represented proportionally.
    pub fn merge(&mut self, other: &DurationStats) {
        self.count += other.count;
        self.sum += other.sum;
        if let Some(m) = other.min {
            self.min = Some(self.min.map_or(m, |x| x.min(m)));
        }
        if let Some(m) = other.max {
            self.max = Some(self.max.map_or(m, |x| x.max(m)));
        }
        self.samples.extend_from_slice(&other.samples);
        if self.samples.len() > RESERVOIR_CAP {
            let n = self.samples.len();
            let thinned: Vec<Duration> = (0..RESERVOIR_CAP)
                .map(|i| self.samples[i * n / RESERVOIR_CAP])
                .collect();
            self.samples = thinned;
        }
    }
}

/// What a [`Metric`] measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing count (protocol choices, cache hits…).
    Counter,
    /// Last-write-wins level (queue depth, in-flight operations…).
    Gauge,
}

/// A typed handle into the metrics registry: a static name plus a kind.
///
/// Model layers declare their metrics as `const`s in a per-crate
/// `metrics` module (e.g. `rucx_ucp::metrics::RNDV_IPC`) and pass the
/// handle to [`Counters`]; ad-hoc string literals at call sites are
/// rejected by `scripts/check.sh`. The name is still the stable external
/// identity — tests and JSON output read by name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Metric {
    pub name: &'static str,
    pub kind: MetricKind,
}

impl Metric {
    /// Declare a counter metric.
    pub const fn counter(name: &'static str) -> Self {
        Metric {
            name,
            kind: MetricKind::Counter,
        }
    }

    /// Declare a gauge metric.
    pub const fn gauge(name: &'static str) -> Self {
        Metric {
            name,
            kind: MetricKind::Gauge,
        }
    }
}

/// The unified metrics registry: named counter/gauge values with
/// deterministic iteration order (insertion order). Updates go through
/// typed [`Metric`] handles; reads are by name (0 if never touched).
#[derive(Debug, Clone, Default)]
pub struct Counters {
    entries: Vec<(&'static str, u64)>,
}

impl Counters {
    pub fn new() -> Self {
        Self::default()
    }

    fn entry(&mut self, name: &'static str) -> &mut u64 {
        if let Some(i) = self.entries.iter().position(|(n, _)| *n == name) {
            &mut self.entries[i].1
        } else {
            self.entries.push((name, 0));
            let last = self.entries.len() - 1;
            &mut self.entries[last].1
        }
    }

    /// Add `v` to counter `m`, creating it at zero if absent.
    pub fn add(&mut self, m: Metric, v: u64) {
        debug_assert_eq!(m.kind, MetricKind::Counter, "add() on gauge {}", m.name);
        *self.entry(m.name) += v;
    }

    /// Increment counter `m` by one.
    pub fn bump(&mut self, m: Metric) {
        self.add(m, 1);
    }

    /// Set gauge `m` to `v` (last write wins).
    pub fn set(&mut self, m: Metric, v: u64) {
        debug_assert_eq!(m.kind, MetricKind::Gauge, "set() on counter {}", m.name);
        *self.entry(m.name) = v;
    }

    /// Read a metric by name (0 if never touched).
    pub fn get(&self, name: &str) -> u64 {
        self.entries
            .iter()
            .find(|(n, _)| *n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// Iterate `(name, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.entries.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_accumulate() {
        let mut s = DurationStats::new();
        assert_eq!(s.mean(), 0.0);
        for d in [10, 20, 30] {
            s.record(d);
        }
        assert_eq!(s.count(), 3);
        assert_eq!(s.mean(), 20.0);
        assert_eq!(s.min(), Some(10));
        assert_eq!(s.max(), Some(30));
    }

    #[test]
    fn stats_merge() {
        let mut a = DurationStats::new();
        a.record(5);
        let mut b = DurationStats::new();
        b.record(15);
        b.record(25);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.min(), Some(5));
        assert_eq!(a.max(), Some(25));
        assert_eq!(a.mean(), 15.0);
    }

    #[test]
    fn percentiles_are_exact_below_cap() {
        let mut s = DurationStats::new();
        assert_eq!(s.median(), None);
        for d in 1..=100u64 {
            s.record(d);
        }
        assert!(s.exact());
        // Nearest-rank on an even count resolves upward: rank 50 of 0..=99.
        assert_eq!(s.median(), Some(51));
        assert_eq!(s.p99(), Some(99));
        assert_eq!(s.percentile(0.0), Some(1));
        assert_eq!(s.percentile(100.0), Some(100));
    }

    #[test]
    fn merge_preserves_percentiles() {
        let mut a = DurationStats::new();
        let mut b = DurationStats::new();
        for d in 1..=50u64 {
            a.record(d);
        }
        for d in 51..=100u64 {
            b.record(d);
        }
        a.merge(&b);
        assert!(a.exact());
        assert_eq!(a.median(), Some(51));
        assert_eq!(a.p99(), Some(99));
    }

    #[test]
    fn reservoir_is_deterministic_and_bounded() {
        let run = || {
            let mut s = DurationStats::new();
            for d in 0..(3 * RESERVOIR_CAP as u64) {
                s.record(d * 7 % 50_000);
            }
            (s.median(), s.p99(), s.count())
        };
        let (m, p, c) = run();
        assert_eq!((m, p, c), run());
        assert_eq!(c, 3 * RESERVOIR_CAP as u64);
        // The reservoir estimate of a ~uniform [0, 50k) stream must land
        // near the true median/p99.
        let med = m.unwrap() as f64;
        assert!((20_000.0..30_000.0).contains(&med), "median {med}");
        let p99 = p.unwrap() as f64;
        assert!(p99 > 45_000.0, "p99 {p99}");
    }

    #[test]
    fn merged_overflow_reservoir_stays_bounded_and_representative() {
        let mut a = DurationStats::new();
        let mut b = DurationStats::new();
        for d in 0..RESERVOIR_CAP as u64 {
            a.record(10); // low half
            b.record(1_000); // high half
        }
        a.merge(&b);
        assert_eq!(a.count(), 2 * RESERVOIR_CAP as u64);
        // Median of an even low/high mix must be one of the two modes, and
        // both modes must survive the thinning.
        assert!(a.percentile(25.0) == Some(10));
        assert!(a.percentile(75.0) == Some(1_000));
    }

    #[test]
    fn counters_bump_and_get() {
        const EAGER: Metric = Metric::counter("eager");
        const RNDV: Metric = Metric::counter("rndv");
        let mut c = Counters::new();
        c.bump(EAGER);
        c.bump(EAGER);
        c.add(RNDV, 5);
        assert_eq!(c.get("eager"), 2);
        assert_eq!(c.get("rndv"), 5);
        assert_eq!(c.get("missing"), 0);
        let names: Vec<_> = c.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["eager", "rndv"]);
    }

    #[test]
    fn gauges_are_last_write_wins() {
        const DEPTH: Metric = Metric::gauge("queue.depth");
        let mut c = Counters::new();
        c.set(DEPTH, 4);
        c.set(DEPTH, 2);
        assert_eq!(c.get("queue.depth"), 2);
    }
}
