//! Lightweight measurement helpers shared by the benchmark harnesses.

use crate::time::Duration;

/// Online accumulator for a series of duration samples.
#[derive(Debug, Clone, Default)]
pub struct DurationStats {
    count: u64,
    sum: u128,
    min: Option<Duration>,
    max: Option<Duration>,
}

impl DurationStats {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample.
    pub fn record(&mut self, d: Duration) {
        self.count += 1;
        self.sum += d as u128;
        self.min = Some(self.min.map_or(d, |m| m.min(d)));
        self.max = Some(self.max.map_or(d, |m| m.max(d)));
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean sample in nanoseconds (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    pub fn min(&self) -> Option<Duration> {
        self.min
    }

    pub fn max(&self) -> Option<Duration> {
        self.max
    }

    pub fn total(&self) -> u128 {
        self.sum
    }

    /// Merge another accumulator into this one.
    pub fn merge(&mut self, other: &DurationStats) {
        self.count += other.count;
        self.sum += other.sum;
        if let Some(m) = other.min {
            self.min = Some(self.min.map_or(m, |x| x.min(m)));
        }
        if let Some(m) = other.max {
            self.max = Some(self.max.map_or(m, |x| x.max(m)));
        }
    }
}

/// Simple named counters for model introspection (protocol choices, cache
/// hits…). Deterministic iteration order (insertion order).
#[derive(Debug, Clone, Default)]
pub struct Counters {
    entries: Vec<(&'static str, u64)>,
}

impl Counters {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `v` to counter `name`, creating it at zero if absent.
    pub fn add(&mut self, name: &'static str, v: u64) {
        if let Some(e) = self.entries.iter_mut().find(|(n, _)| *n == name) {
            e.1 += v;
        } else {
            self.entries.push((name, v));
        }
    }

    /// Increment counter `name` by one.
    pub fn bump(&mut self, name: &'static str) {
        self.add(name, 1);
    }

    /// Read a counter (0 if never touched).
    pub fn get(&self, name: &str) -> u64 {
        self.entries
            .iter()
            .find(|(n, _)| *n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// Iterate `(name, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.entries.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_accumulate() {
        let mut s = DurationStats::new();
        assert_eq!(s.mean(), 0.0);
        for d in [10, 20, 30] {
            s.record(d);
        }
        assert_eq!(s.count(), 3);
        assert_eq!(s.mean(), 20.0);
        assert_eq!(s.min(), Some(10));
        assert_eq!(s.max(), Some(30));
    }

    #[test]
    fn stats_merge() {
        let mut a = DurationStats::new();
        a.record(5);
        let mut b = DurationStats::new();
        b.record(15);
        b.record(25);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.min(), Some(5));
        assert_eq!(a.max(), Some(25));
        assert_eq!(a.mean(), 15.0);
    }

    #[test]
    fn counters_bump_and_get() {
        let mut c = Counters::new();
        c.bump("eager");
        c.bump("eager");
        c.add("rndv", 5);
        assert_eq!(c.get("eager"), 2);
        assert_eq!(c.get("rndv"), 5);
        assert_eq!(c.get("missing"), 0);
        let names: Vec<_> = c.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["eager", "rndv"]);
    }
}
