//! Conservative-lookahead sharded execution of multiple [`Simulation`]s.
//!
//! A [`ShardedEngine`] owns N independent simulations ("shards"), each
//! modelling a disjoint set of simulated nodes, and advances them on OS
//! threads in *windows*: with `m` the global minimum next-event time across
//! shards and `L` the lookahead (the minimum virtual latency of any
//! cross-shard interaction), every shard may safely execute all events in
//! `[m, m + L - 1]` without hearing from the others — any message sent at
//! time `s ≥ m` arrives at `s + L > m + L - 1`, i.e. strictly after the
//! window. This is classic conservative (null-message-free) parallel DES:
//! no rollback, no null messages, a barrier per window.
//!
//! Cross-shard messages travel as *envelopes*: the sending shard leases a
//! slot from a shared arena ([`EnvelopePool`]) and pushes the lease into
//! its [`Outbox`] during the window; at the barrier the engine drains all
//! outboxes, sorts envelopes by `(recv, key, src, dst)` — a total,
//! thread-timing-independent order — and schedules each delivery as an
//! ordinary event on the destination shard. Determinism therefore does not
//! depend on which OS thread finished first, and a run with any shard
//! count replays the exact same virtual-time history.
//!
//! Fault injection hooks in at routing: an optional [`RouteHook`] sees
//! every envelope at the barrier and may drop, duplicate, or delay it —
//! giving chaos tests coverage of faults that cross shard boundaries.
//!
//! Panic safety: each shard runs its window under `catch_unwind`. If a
//! shard panics mid-window the engine drains every outbox (returning all
//! leased arena slots) before resuming the panic, and the shard's
//! `Simulation` keeps its core, so pooled process workers are returned when
//! the engine is dropped — no leaked slots, no leaked workers.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use rucx_compat::sync::Mutex;

use crate::sched::Scheduler;
use crate::sim::Simulation;
use crate::time::{Duration, Time};

/// Shared arena of in-flight cross-shard payloads. Slots are leased on
/// send and returned on delivery (or on drop of an undelivered lease), so
/// `in_use() == 0` between windows is an invariant chaos tests can audit.
pub struct EnvelopePool<E> {
    slots: Mutex<Slots<E>>,
    in_use: AtomicUsize,
}

struct Slots<E> {
    arena: Vec<Option<E>>,
    free: Vec<u32>,
}

impl<E> EnvelopePool<E> {
    pub fn new() -> Arc<Self> {
        Arc::new(EnvelopePool {
            slots: Mutex::new(Slots {
                arena: Vec::new(),
                free: Vec::new(),
            }),
            in_use: AtomicUsize::new(0),
        })
    }

    /// Lease a slot holding `payload`. The lease returns the slot on drop
    /// unless the payload is taken out first.
    pub fn lease(self: &Arc<Self>, payload: E) -> EnvelopeLease<E> {
        let slot = {
            let mut s = self.slots.lock();
            match s.free.pop() {
                Some(i) => {
                    s.arena[i as usize] = Some(payload);
                    i
                }
                None => {
                    s.arena.push(Some(payload));
                    (s.arena.len() - 1) as u32
                }
            }
        };
        self.in_use.fetch_add(1, Ordering::Relaxed);
        EnvelopeLease {
            pool: self.clone(),
            slot,
            live: true,
        }
    }

    /// Number of currently leased slots (0 between windows, always 0 after
    /// a run — even one that panicked).
    pub fn in_use(&self) -> usize {
        self.in_use.load(Ordering::Relaxed)
    }

    /// High-water mark of the arena (slots ever allocated).
    pub fn capacity(&self) -> usize {
        self.slots.lock().arena.len()
    }

    fn release(&self, slot: u32) -> Option<E> {
        let payload = {
            let mut s = self.slots.lock();
            let p = s.arena[slot as usize].take();
            s.free.push(slot);
            p
        };
        self.in_use.fetch_sub(1, Ordering::Relaxed);
        payload
    }
}

/// RAII lease of one [`EnvelopePool`] slot.
pub struct EnvelopeLease<E> {
    pool: Arc<EnvelopePool<E>>,
    slot: u32,
    live: bool,
}

impl<E> EnvelopeLease<E> {
    /// Take the payload out, returning the slot to the pool.
    pub fn take(mut self) -> E {
        self.live = false;
        self.pool
            .clone()
            .release(self.slot)
            .expect("envelope slot already vacated")
    }

    /// Inspect the payload in place (e.g. from a [`RouteHook`]).
    pub fn with<R>(&self, f: impl FnOnce(&E) -> R) -> R {
        let s = self.pool.slots.lock();
        f(s.arena[self.slot as usize]
            .as_ref()
            .expect("envelope slot already vacated"))
    }
}

impl<E> Drop for EnvelopeLease<E> {
    fn drop(&mut self) {
        if self.live {
            self.pool.release(self.slot);
        }
    }
}

/// One cross-shard message awaiting the barrier.
pub struct Envelope<E> {
    pub src_shard: usize,
    pub dst_shard: usize,
    /// Virtual arrival time. Conservative contract: an envelope sent during
    /// a window must arrive strictly after that window's limit.
    pub recv: Time,
    /// Deterministic tiebreak among same-`recv` envelopes, e.g.
    /// `(source rank, per-source send sequence)`. Must be unique per
    /// source shard.
    pub key: (u64, u64),
    pub payload: EnvelopeLease<E>,
}

/// Per-shard staging area for outgoing envelopes; clone it into the
/// shard's world. Sends are cheap (one pool lease + one Vec push); the
/// engine drains it at every window barrier.
pub struct Outbox<E> {
    inner: Arc<OutboxInner<E>>,
}

impl<E> Clone for Outbox<E> {
    fn clone(&self) -> Self {
        Outbox {
            inner: self.inner.clone(),
        }
    }
}

struct OutboxInner<E> {
    shard: usize,
    pool: Arc<EnvelopePool<E>>,
    queue: Mutex<Vec<Envelope<E>>>,
}

impl<E> Outbox<E> {
    fn new(shard: usize, pool: Arc<EnvelopePool<E>>) -> Self {
        Outbox {
            inner: Arc::new(OutboxInner {
                shard,
                pool,
                queue: Mutex::new(Vec::new()),
            }),
        }
    }

    /// Queue `payload` for delivery to `dst_shard` at virtual time `recv`.
    pub fn send(&self, dst_shard: usize, recv: Time, key: (u64, u64), payload: E) {
        let lease = self.inner.pool.lease(payload);
        self.inner.queue.lock().push(Envelope {
            src_shard: self.inner.shard,
            dst_shard,
            recv,
            key,
            payload: lease,
        });
    }

    /// Envelopes currently staged (diagnostics).
    pub fn len(&self) -> usize {
        self.inner.queue.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn drain(&self) -> Vec<Envelope<E>> {
        std::mem::take(&mut *self.inner.queue.lock())
    }
}

/// Routing metadata a [`RouteHook`] decides on.
#[derive(Debug, Clone, Copy)]
pub struct RouteInfo {
    pub src_shard: usize,
    pub dst_shard: usize,
    pub recv: Time,
    pub key: (u64, u64),
}

/// What to do with one envelope at the barrier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteDecision {
    Deliver,
    /// Silently lose the envelope (the model must detect and surface it).
    Drop,
    /// Deliver twice (switch-retransmission artifact).
    Duplicate,
    /// Deliver late by the given extra delay.
    Delay(Duration),
}

/// Per-envelope routing hook (fault injection). To keep runs shard-count
/// invariant the decision should be a pure function of `(info, payload)` —
/// e.g. a hash of `(seed, key)` — not of call order: the engine applies
/// hooks in sorted envelope order, which differs across shard counts.
pub type RouteHook<E> = Box<dyn FnMut(&RouteInfo, &E) -> RouteDecision + Send>;

/// Counters the engine keeps per run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Lookahead windows executed.
    pub windows: u64,
    /// Envelopes drained at barriers (before routing decisions).
    pub envelopes: u64,
    /// Deliveries scheduled (duplicates count twice).
    pub delivered: u64,
    pub dropped: u64,
    pub duplicated: u64,
    pub delayed: u64,
    /// Total events executed across all shards (filled in when the run
    /// ends).
    pub events: u64,
}

/// Why [`ShardedEngine::run`] returned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardedOutcome {
    /// Every shard drained its queue and finished its processes.
    Completed,
    /// Global stall: no shard has events, no envelopes are in flight, yet
    /// work remains parked — reachable only when routing dropped envelopes
    /// (`lost > 0`) or a model deadlocked. The "give up" verdict of a
    /// lossy run: progress is provably impossible.
    Stalled {
        /// `(process name, blocked-on)` pairs across all shards.
        blocked: Vec<(String, String)>,
        /// Envelopes lost to [`RouteDecision::Drop`].
        lost: u64,
    },
}

/// Conservative-lookahead parallel driver over `N` shards.
///
/// `W` is the per-shard world, `E` the cross-shard payload. Deliveries go
/// through a single `deliver` function, invoked *as a scheduled event* on
/// the destination shard at the envelope's `recv` time — so between
/// windows every shard is quiescent and `next_event_time` fully accounts
/// for pending deliveries.
pub struct ShardedEngine<W: Send + 'static, E: Send + 'static> {
    shards: Vec<Simulation<W>>,
    outboxes: Vec<Outbox<E>>,
    pool: Arc<EnvelopePool<E>>,
    lookahead: Duration,
    deliver: Arc<dyn Fn(&mut W, &mut Scheduler<W>, E) + Send + Sync>,
    route_hook: Option<RouteHook<E>>,
    stats: ShardStats,
    /// Limit of the most recent window (for the conservative-contract
    /// assertion on envelope recv times).
    last_limit: Option<Time>,
}

impl<W: Send + 'static, E: Send + Clone + 'static> ShardedEngine<W, E> {
    /// Build an engine: `build(shard_index, outbox)` constructs each
    /// shard's simulation (stash the outbox in the world and seed initial
    /// events); `deliver` applies an arriving cross-shard payload.
    ///
    /// `lookahead` must be a *lower bound* on `recv - send_time` for every
    /// envelope any shard ever sends; the engine debug-asserts it.
    pub fn new(
        n_shards: usize,
        lookahead: Duration,
        deliver: impl Fn(&mut W, &mut Scheduler<W>, E) + Send + Sync + 'static,
        mut build: impl FnMut(usize, Outbox<E>) -> Simulation<W>,
    ) -> Self {
        assert!(n_shards >= 1, "need at least one shard");
        let lookahead = lookahead.max(1);
        let pool = EnvelopePool::new();
        let outboxes: Vec<Outbox<E>> = (0..n_shards)
            .map(|i| Outbox::new(i, pool.clone()))
            .collect();
        let shards = (0..n_shards)
            .map(|i| build(i, outboxes[i].clone()))
            .collect();
        ShardedEngine {
            shards,
            outboxes,
            pool,
            lookahead,
            deliver: Arc::new(deliver),
            route_hook: None,
            stats: ShardStats::default(),
            last_limit: None,
        }
    }

    /// Install a routing hook (fault injection). See [`RouteHook`].
    pub fn set_route_hook(
        &mut self,
        hook: impl FnMut(&RouteInfo, &E) -> RouteDecision + Send + 'static,
    ) {
        self.route_hook = Some(Box::new(hook));
    }

    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    pub fn lookahead(&self) -> Duration {
        self.lookahead
    }

    pub fn stats(&self) -> &ShardStats {
        &self.stats
    }

    pub fn pool(&self) -> &Arc<EnvelopePool<E>> {
        &self.pool
    }

    pub fn shards(&self) -> &[Simulation<W>] {
        &self.shards
    }

    pub fn shard_mut(&mut self, i: usize) -> &mut Simulation<W> {
        &mut self.shards[i]
    }

    /// Run to global completion or stall.
    pub fn run(&mut self) -> ShardedOutcome {
        loop {
            // Barrier work first: deliveries from the previous window
            // become scheduled events, so they count toward `m`.
            self.exchange();
            let m = match self
                .shards
                .iter_mut()
                .filter_map(|s| s.next_event_time())
                .min()
            {
                Some(m) => m,
                None => break,
            };
            let limit = m.saturating_add(self.lookahead - 1);
            self.stats.windows += 1;
            self.last_limit = Some(limit);
            self.run_window(limit);
        }
        self.stats.events = self
            .shards
            .iter()
            .map(|s| s.scheduler_ref().events_executed())
            .sum();
        let all_done = self.shards.iter().all(|s| s.all_processes_finished());
        if all_done {
            ShardedOutcome::Completed
        } else {
            ShardedOutcome::Stalled {
                blocked: self
                    .shards
                    .iter()
                    .flat_map(|s| s.blocked_processes())
                    .collect(),
                lost: self.stats.dropped,
            }
        }
    }

    /// Execute one window: every shard with work due by `limit` advances
    /// concurrently (inline when only one is active). A panicking shard
    /// drains all outboxes — returning leased slots — before the panic
    /// resumes on the engine's thread.
    fn run_window(&mut self, limit: Time) {
        let mut active: Vec<&mut Simulation<W>> = self
            .shards
            .iter_mut()
            .filter_map(|s| match s.next_event_time() {
                Some(t) if t <= limit => Some(s),
                _ => None,
            })
            .collect();
        let mut panic_payload = None;
        if active.len() == 1 {
            if let Err(p) = catch_unwind(AssertUnwindSafe(|| active[0].run_until(limit))) {
                panic_payload = Some(p);
            }
        } else {
            let payloads: Vec<_> = std::thread::scope(|scope| {
                let handles: Vec<_> = active
                    .into_iter()
                    .map(|sim| {
                        scope.spawn(move || {
                            catch_unwind(AssertUnwindSafe(|| sim.run_until(limit))).err()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .filter_map(|h| h.join().expect("shard watchdog thread panicked"))
                    .collect()
            });
            panic_payload = payloads.into_iter().next();
        }
        if let Some(p) = panic_payload {
            // Return every leased envelope slot before propagating: the
            // arena must not leak across a shard panic.
            for ob in &self.outboxes {
                drop(ob.drain());
            }
            resume_unwind(p);
        }
    }

    /// Drain all outboxes, order envelopes deterministically, apply the
    /// routing hook, and schedule deliveries on the destination shards.
    fn exchange(&mut self) {
        let mut all: Vec<Envelope<E>> = Vec::new();
        for ob in &self.outboxes {
            all.extend(ob.drain());
        }
        if all.is_empty() {
            return;
        }
        // Total order independent of thread timing and shard count.
        all.sort_by_key(|e| (e.recv, e.key, e.src_shard, e.dst_shard));
        for env in all {
            self.stats.envelopes += 1;
            if let Some(limit) = self.last_limit {
                debug_assert!(
                    env.recv > limit,
                    "conservative contract violated: envelope recv {} within window limit {limit}",
                    env.recv
                );
            }
            let info = RouteInfo {
                src_shard: env.src_shard,
                dst_shard: env.dst_shard,
                recv: env.recv,
                key: env.key,
            };
            let decision = match self.route_hook.as_mut() {
                Some(h) => env.payload.with(|p| h(&info, p)),
                None => RouteDecision::Deliver,
            };
            match decision {
                RouteDecision::Deliver => {
                    self.stats.delivered += 1;
                    self.deliver_at(env.dst_shard, env.recv, env.payload.take());
                }
                RouteDecision::Drop => {
                    self.stats.dropped += 1;
                    drop(env.payload);
                }
                RouteDecision::Duplicate => {
                    self.stats.duplicated += 1;
                    self.stats.delivered += 2;
                    let copy = env.payload.with(|p| p.clone());
                    self.deliver_at(env.dst_shard, env.recv, copy);
                    self.deliver_at(env.dst_shard, env.recv, env.payload.take());
                }
                RouteDecision::Delay(extra) => {
                    self.stats.delayed += 1;
                    self.stats.delivered += 1;
                    let at = env.recv.saturating_add(extra);
                    self.deliver_at(env.dst_shard, at, env.payload.take());
                }
            }
        }
    }

    fn deliver_at(&mut self, dst: usize, at: Time, payload: E) {
        let f = self.deliver.clone();
        self.shards[dst].with_parts(move |_, s| {
            s.schedule_at(at, move |w, s| f(w, s, payload));
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{RunOutcome, SimConfig};
    use crate::ProcessPool;

    /// Ping-pong across two shards: shard 0 sends k, shard 1 replies k+1,
    /// until 10. Exercises windows, envelope ordering, and termination.
    #[test]
    fn two_shard_ping_pong_completes() {
        struct World {
            id: usize,
            outbox: Outbox<u64>,
            seen: Vec<(Time, u64)>,
        }
        const LAT: Duration = 100;
        let mut engine = ShardedEngine::new(
            2,
            LAT,
            |w: &mut World, s: &mut Scheduler<World>, k: u64| {
                w.seen.push((s.now(), k));
                if k < 10 {
                    let dst = 1 - w.id;
                    w.outbox.send(dst, s.now() + LAT, (w.id as u64, k), k + 1);
                }
            },
            |id, outbox| {
                let mut sim = Simulation::new(World {
                    id,
                    outbox,
                    seen: Vec::new(),
                });
                if id == 0 {
                    sim.with_parts(|w, s| {
                        let recv = s.now() + LAT;
                        w.outbox.send(1, recv, (0, 999), 0);
                    });
                }
                sim
            },
        );
        assert_eq!(engine.run(), ShardedOutcome::Completed);
        assert_eq!(engine.pool().in_use(), 0);
        let s1 = &engine.shards()[1].world().seen;
        let s0 = &engine.shards()[0].world().seen;
        assert_eq!(s1.first(), Some(&(100, 0)));
        assert_eq!(s1.last(), Some(&(1100, 10)), "final hop lands at 11·LAT");
        assert_eq!(s0.len() + s1.len(), 11, "all 11 hops delivered");
        assert!(engine.stats().windows > 0);
        assert_eq!(engine.stats().delivered, 11);
    }

    /// Dropping every envelope stalls the run and reports the loss.
    #[test]
    fn dropped_envelopes_stall_with_loss_reported() {
        struct World {
            outbox: Outbox<u64>,
        }
        let mut engine = ShardedEngine::new(
            2,
            50,
            |_w: &mut World, _s: &mut Scheduler<World>, _k: u64| {
                panic!("nothing must be delivered");
            },
            |id, outbox| {
                let mut sim = Simulation::new(World { outbox });
                if id == 0 {
                    // A process that waits forever models "work remains".
                    let t = sim.scheduler().new_trigger();
                    sim.spawn("waiter", 0, move |ctx| ctx.wait(t));
                    sim.with_parts(|w, s| {
                        let recv = s.now() + 50;
                        w.outbox.send(1, recv, (0, 0), 7);
                    });
                }
                sim
            },
        );
        engine.set_route_hook(|_, _| RouteDecision::Drop);
        match engine.run() {
            ShardedOutcome::Stalled { blocked, lost } => {
                assert_eq!(lost, 1);
                assert_eq!(blocked.len(), 1);
                assert_eq!(blocked[0].0, "waiter");
            }
            other => panic!("expected stall, got {other:?}"),
        }
        assert_eq!(engine.pool().in_use(), 0, "dropped lease must be returned");
    }

    /// Satellite: the PR-2 process-panic regression, extended to the
    /// sharded path. A shard whose process panics mid-window (after
    /// staging envelopes) must (a) propagate the panic with name/time/
    /// payload, (b) return every leased arena slot, and (c) return its
    /// pooled worker for reuse.
    #[test]
    fn shard_panic_returns_arena_slots_and_pool_workers() {
        struct World {
            outbox: Outbox<u64>,
        }
        let pool = ProcessPool::new();
        let sim_pool = pool.clone();
        let mut engine = ShardedEngine::new(
            2,
            1000,
            |_w: &mut World, _s: &mut Scheduler<World>, _k: u64| {},
            move |id, outbox| {
                let mut config = SimConfig::default();
                config.pool = sim_pool.clone();
                let mut sim = Simulation::with_config(World { outbox }, config);
                if id == 1 {
                    sim.spawn("doomed", 0, |ctx| {
                        ctx.advance(77);
                        ctx.with_world(|w, s| {
                            // Stage envelopes, then die before the barrier.
                            let recv = s.now() + 1000;
                            w.outbox.send(0, recv, (1, 0), 1);
                            w.outbox.send(0, recv + 1, (1, 1), 2);
                        });
                        panic!("mid-window failure");
                    });
                } else {
                    sim.with_parts(|_, s| s.schedule_at(0, |_, _| {}));
                }
                sim
            },
        );
        let arena = engine.pool().clone();
        let err = catch_unwind(AssertUnwindSafe(|| engine.run()))
            .expect_err("shard panic must propagate");
        let msg = err
            .downcast_ref::<String>()
            .expect("driver panic carries a String");
        assert!(msg.contains("'doomed'"), "missing process name: {msg}");
        assert!(msg.contains("t=77"), "missing virtual time: {msg}");
        assert!(msg.contains("mid-window failure"), "missing payload: {msg}");
        // (a) leased slots came back even though the envelopes never
        // reached their destination...
        assert_eq!(arena.in_use(), 0, "arena slots leaked across shard panic");
        assert!(arena.capacity() >= 2, "envelopes were actually staged");
        // ...and (b) dropping the engine returns the pooled worker.
        drop(engine);
        assert!(
            pool.wait_idle(1, std::time::Duration::from_secs(5)),
            "pooled worker not returned after shard panic: {pool:?}"
        );
        assert_eq!(pool.threads_created(), 1);
        // (c) the worker is reusable afterwards.
        let mut config = SimConfig::default();
        config.pool = pool.clone();
        let mut sim = Simulation::with_config(0u32, config);
        sim.spawn("healthy", 0, |ctx| ctx.with_world(|w, _| *w = 9));
        assert_eq!(sim.run(), RunOutcome::Completed);
        assert_eq!(*sim.world(), 9);
        assert_eq!(pool.threads_created(), 1, "worker was reused");
    }

    /// Same seed, different shard counts is the caller's concern; but the
    /// same engine run twice must be identical — and duplicates/delays
    /// must route deterministically.
    #[test]
    fn duplicate_and_delay_routing_is_deterministic() {
        fn run_once() -> (Vec<(Time, u64)>, ShardStats) {
            struct World {
                id: usize,
                outbox: Outbox<u64>,
                seen: Vec<(Time, u64)>,
            }
            let mut engine = ShardedEngine::new(
                3,
                10,
                |w: &mut World, s: &mut Scheduler<World>, k: u64| {
                    w.seen.push((s.now(), k));
                },
                |id, outbox| {
                    let mut sim = Simulation::new(World {
                        id,
                        outbox,
                        seen: Vec::new(),
                    });
                    sim.with_parts(|w, s| {
                        let id = w.id;
                        s.schedule_at(5, move |w: &mut World, s: &mut Scheduler<World>| {
                            for dst in 0..3usize {
                                if dst != id {
                                    let recv = s.now() + 10;
                                    w.outbox.send(dst, recv, (id as u64, dst as u64), id as u64);
                                }
                            }
                        });
                    });
                    sim
                },
            );
            engine.set_route_hook(|info, _| match info.key {
                (0, 1) => RouteDecision::Duplicate,
                (1, 2) => RouteDecision::Delay(33),
                (2, 0) => RouteDecision::Drop,
                _ => RouteDecision::Deliver,
            });
            let _ = engine.run();
            let mut all = Vec::new();
            for sh in engine.shards() {
                all.extend(sh.world().seen.iter().copied());
            }
            all.sort_unstable();
            assert_eq!(engine.pool().in_use(), 0);
            (all, engine.stats().clone())
        }
        let (a, sa) = run_once();
        let (b, sb) = run_once();
        assert_eq!(a, b);
        assert_eq!(sa, sb);
        assert_eq!(sa.duplicated, 1);
        assert_eq!(sa.delayed, 1);
        assert_eq!(sa.dropped, 1);
        // 6 envelopes: 4 normal + 1 dup (2 deliveries) + 1 delayed - 1 drop.
        assert_eq!(sa.envelopes, 6);
        assert_eq!(sa.delivered, 6);
        assert_eq!(a.len(), 6);
    }
}
