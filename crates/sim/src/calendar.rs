//! Event-queue backends: the `BinaryHeap` determinism oracle and the
//! calendar queue that replaces it on the dispatch hot path.
//!
//! The scheduler's contract with a backend is small: events are pushed with
//! a unique `(time, seq)` key, popped in ascending key order, and — because
//! [`crate::Scheduler::schedule_at`] clamps to the present — no push ever
//! carries a time below the last popped time. The calendar queue exploits
//! that monotone floor: events hash into power-of-two time buckets of width
//! `1 << shift`, the scan for the minimum starts at the floor's bucket and
//! almost always ends within a probe or two, and the bucket array resizes
//! (recomputing the width from sampled inter-event gaps) so each bucket
//! holds O(1) events regardless of load. Amortized push/pop is O(1) versus
//! the heap's O(log n) with a cache miss per level.
//!
//! The heap stays available as the *oracle*: `RUCX_SCHED_BACKEND=oracle`
//! (or [`crate::SimConfig::backend`]) reruns any simulation on the original
//! `BinaryHeap`, and the property suite below drives both backends through
//! identical operation sequences — tie-heavy timestamps, zero-delay pushes
//! mid-drain, cancellations — asserting identical pop streams.

use std::collections::BinaryHeap;

use crate::sched::EventEntry;
use crate::time::Time;

/// Fewest buckets the calendar keeps; also the shrink floor.
const MIN_BUCKETS: usize = 256;
/// Most buckets the calendar grows to (1 Mi buckets ≈ 8 MiB of headers).
const MAX_BUCKETS: usize = 1 << 20;
/// Gap samples taken at resize to pick the bucket width.
const GAP_SAMPLES: usize = 64;

/// Priority-queue interface the scheduler drives. Keys are `(time, seq)`
/// pairs, unique per entry; pops must come out in ascending key order.
///
/// `min_key` takes `&mut self` so implementations may cache the search.
pub trait SchedulerBackend<W> {
    /// Insert an entry. The entry's time is never below the time of the
    /// most recent `pop` (the scheduler clamps to the present).
    fn push(&mut self, e: EventEntry<W>);
    /// Key of the minimum entry, if any.
    fn min_key(&mut self) -> Option<(Time, u64)>;
    /// Remove and return the minimum entry.
    fn pop(&mut self) -> Option<EventEntry<W>>;
    /// Pop the minimum entry if its time is at or before `limit`;
    /// otherwise report the minimum's time (`Err(Some(t))`) or emptiness
    /// (`Err(None)`). One queue probe for the whole dispatch decision;
    /// backends may override the peek-then-pop default.
    fn pop_le(&mut self, limit: Time) -> Result<EventEntry<W>, Option<Time>> {
        match self.min_key() {
            None => Err(None),
            Some((t, _)) if t > limit => Err(Some(t)),
            Some(_) => Ok(self.pop().expect("min_key said non-empty")),
        }
    }
    /// Remove the entry with exactly this key, if present.
    fn cancel(&mut self, time: Time, seq: u64) -> Option<EventEntry<W>>;
    /// Number of queued entries.
    fn len(&self) -> usize;
    /// True when no entries are queued.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The original `BinaryHeap` scheduler queue, kept verbatim as the
/// determinism oracle. `cancel` is O(n) (rebuilds the heap) — acceptable
/// for an oracle; the calendar does it in O(bucket).
pub struct OracleQueue<W> {
    heap: BinaryHeap<EventEntry<W>>,
}

impl<W> OracleQueue<W> {
    pub fn new() -> Self {
        OracleQueue {
            heap: BinaryHeap::new(),
        }
    }
}

impl<W> Default for OracleQueue<W> {
    fn default() -> Self {
        Self::new()
    }
}

impl<W> SchedulerBackend<W> for OracleQueue<W> {
    fn push(&mut self, e: EventEntry<W>) {
        self.heap.push(e);
    }

    fn min_key(&mut self) -> Option<(Time, u64)> {
        self.heap.peek().map(|e| (e.time, e.seq))
    }

    fn pop(&mut self) -> Option<EventEntry<W>> {
        self.heap.pop()
    }

    fn cancel(&mut self, time: Time, seq: u64) -> Option<EventEntry<W>> {
        let mut v = std::mem::take(&mut self.heap).into_vec();
        let found = v
            .iter()
            .position(|e| e.time == time && e.seq == seq)
            .map(|i| v.swap_remove(i));
        self.heap = BinaryHeap::from(v);
        found
    }

    fn len(&self) -> usize {
        self.heap.len()
    }
}

/// Calendar queue: events bucketed by `time >> shift`, modulo a
/// power-of-two bucket count. A *day* is one bucket-width of virtual time;
/// a *year* is one full lap of the bucket array. The minimum search walks
/// days forward from a monotone floor, accepting only entries whose day
/// matches the scanned day (entries from later years share the bucket but
/// are skipped); if a whole year is empty the scan has still visited every
/// entry, so the global minimum it tracked on the side is the answer —
/// that is the direct-search fallback for sparse, far-future queues.
///
/// Entries live in a slab (`slots`) threaded into per-bucket intrusive
/// singly-linked lists; a bucket is just the `u32` slab index of its list
/// head. Freed slots go on an intrusive freelist and are reused, so the
/// steady state allocates nothing: no per-entry boxes, no per-bucket
/// buffers, and a resize only relinks `u32`s — entries never move. The
/// empty-day scan reads a dense `u32` head array (16 buckets per cache
/// line), which is what keeps sparse stretches cheap. The slab holds its
/// high-water mark of slots until the queue is dropped.
pub struct CalendarQueue<W> {
    /// Per-bucket list head: slab index, or [`NIL`] when the bucket is
    /// empty.
    heads: Vec<u32>,
    /// Slab of entries; `next` threads both bucket lists and the freelist.
    slots: Vec<Slot<W>>,
    /// Head of the freelist of vacant slots.
    free: u32,
    /// `heads.len() - 1`; bucket index is `day & mask`.
    mask: u64,
    /// Bucket width is `1 << shift` nanoseconds.
    shift: u32,
    len: usize,
    /// Lower bound on the day of every queued entry.
    cur_day: u64,
    /// Time of the most recent pop; days are re-anchored here on resize.
    floor: Time,
    /// The current minimum entry, when known: key plus its exact location,
    /// so `pop` is a direct O(1) unlink with no re-search.
    cached: Option<Cached>,
}

/// Sentinel slab index for "no slot".
const NIL: u32 = u32::MAX;

struct Slot<W> {
    /// `None` while the slot sits on the freelist.
    e: Option<EventEntry<W>>,
    /// Next slot in this bucket's list (or in the freelist).
    next: u32,
}

/// Location-carrying cache of the minimum entry: its slot plus the
/// preceding slot in its bucket's list (`NIL` when it is the head), so
/// `pop` unlinks without walking. Pushes prepend to list heads and patch
/// the cache up; `cancel` and `resize` invalidate it.
#[derive(Clone, Copy)]
struct Cached {
    key: (Time, u64),
    bucket: usize,
    slot: u32,
    prev: u32,
}

impl<W> CalendarQueue<W> {
    pub fn new() -> Self {
        CalendarQueue {
            heads: vec![NIL; MIN_BUCKETS],
            slots: Vec::new(),
            free: NIL,
            mask: (MIN_BUCKETS - 1) as u64,
            // 1 µs buckets until the first resize samples real gaps.
            shift: 10,
            len: 0,
            cur_day: 0,
            floor: 0,
            cached: None,
        }
    }

    fn bucket_of(&self, day: u64) -> usize {
        (day & self.mask) as usize
    }

    /// Rebuild with a bucket count proportional to the population and a
    /// bucket width matched to the median gap between queued event times
    /// (ties collapse the gap to zero and force single-time buckets).
    fn resize(&mut self) {
        // ~2 buckets per entry: with one event per day that keeps a year
        // longer than the populated window, so buckets rarely hold entries
        // from two different years and the min-scan never has to touch (and
        // cache-miss on) a later year's entry just to skip it.
        let target = (self.len * 2)
            .max(1)
            .next_power_of_two()
            .clamp(MIN_BUCKETS, MAX_BUCKETS);

        // Sample event times (strided, so the sample spans the queue).
        let mut times: Vec<Time> = Vec::with_capacity(GAP_SAMPLES);
        let stride = (self.len / GAP_SAMPLES).max(1);
        let mut i = 0usize;
        'outer: for &h in &self.heads {
            let mut s = h;
            while s != NIL {
                let slot = &self.slots[s as usize];
                if i % stride == 0 {
                    times.push(slot.e.as_ref().expect("linked slot is live").time);
                    if times.len() == GAP_SAMPLES {
                        break 'outer;
                    }
                }
                i += 1;
                s = slot.next;
            }
        }
        times.sort_unstable();
        if times.len() >= 2 {
            let mut gaps: Vec<u64> = times.windows(2).map(|w| w[1] - w[0]).collect();
            gaps.sort_unstable();
            // Consecutive *samples* are `stride` entries apart, so each
            // sampled gap is the sum of ~stride real inter-event gaps;
            // divide it back out or dense queues get buckets `stride`
            // times too wide (and O(stride) scans per pop). The median
            // keeps one huge outlier gap from blowing up the estimate;
            // ties pull it toward zero and hence toward single-time
            // buckets, which is the right direction for tie-heavy loads.
            let per_entry = (gaps[gaps.len() / 2] / stride as u64).max(1);
            self.shift = (63 - per_entry.leading_zeros()).min(40);
        }
        // (< 2 samples: keep the current width.)

        // Relink every live slot into the new bucket array; entries stay
        // put in the slab — a resize moves `u32`s, not events.
        let old = std::mem::replace(&mut self.heads, vec![NIL; target]);
        self.mask = (target - 1) as u64;
        self.cur_day = self.floor >> self.shift;
        self.cached = None;
        for h in old {
            let mut s = h;
            while s != NIL {
                let next = self.slots[s as usize].next;
                let t = self.slots[s as usize]
                    .e
                    .as_ref()
                    .expect("linked slot is live")
                    .time;
                let d = t >> self.shift;
                if d < self.cur_day {
                    self.cur_day = d;
                }
                let idx = self.bucket_of(d);
                self.slots[s as usize].next = self.heads[idx];
                self.heads[idx] = s;
                s = next;
            }
        }
    }

    /// Smallest entry of bucket `b` whose day is exactly `d` (later years
    /// share the bucket but do not count), with its unlink position.
    fn day_min(&self, b: usize, d: u64) -> Option<Cached> {
        let mut best: Option<Cached> = None;
        let mut prev = NIL;
        let mut s = self.heads[b];
        while s != NIL {
            let slot = &self.slots[s as usize];
            let e = slot.e.as_ref().expect("linked slot is live");
            let key = (e.time, e.seq);
            if e.time >> self.shift == d && best.is_none_or(|x| key < x.key) {
                best = Some(Cached {
                    key,
                    bucket: b,
                    slot: s,
                    prev,
                });
            }
            prev = s;
            s = slot.next;
        }
        best
    }

    /// Locate the minimum entry (key and exact location), consulting and
    /// refreshing the cache. Shared by `min_key`, `pop`, and `pop_le`.
    fn find_min(&mut self) -> Option<Cached> {
        if let Some(c) = self.cached {
            return Some(c);
        }
        if self.len == 0 {
            return None;
        }
        let days = self.heads.len() as u64;
        for off in 0..days {
            let d = self.cur_day.saturating_add(off);
            let b = self.bucket_of(d);
            if self.heads[b] == NIL {
                continue;
            }
            if let Some(c) = self.day_min(b, d) {
                self.cur_day = d;
                self.cached = Some(c);
                return Some(c);
            }
        }
        // A whole year scanned without a same-day hit: every remaining
        // entry lies at least a year past the floor. Direct-search the
        // whole slab for the global minimum (rare, sparse-queue regime).
        let mut best: Option<Cached> = None;
        for b in 0..self.heads.len() {
            let mut prev = NIL;
            let mut s = self.heads[b];
            while s != NIL {
                let slot = &self.slots[s as usize];
                let e = slot.e.as_ref().expect("linked slot is live");
                let key = (e.time, e.seq);
                if best.is_none_or(|x| key < x.key) {
                    best = Some(Cached {
                        key,
                        bucket: b,
                        slot: s,
                        prev,
                    });
                }
                prev = s;
                s = slot.next;
            }
        }
        let c = best.expect("non-empty calendar with no entries");
        self.cur_day = c.key.0 >> self.shift;
        self.cached = Some(c);
        Some(c)
    }

    /// Shared tail of `pop`/`pop_le`: unlink the found minimum, advance the
    /// floor, pre-cache the day's next entry, and maybe shrink.
    fn take_min(&mut self, c: Cached) -> EventEntry<W> {
        self.cached = None;
        let e = self.unlink(c);
        debug_assert_eq!((e.time, e.seq), c.key);
        let d = e.time >> self.shift;
        self.floor = e.time;
        self.cur_day = d;
        // Day `d` is the minimum populated day, so its smallest remaining
        // entry (if any) is the next global minimum — cache it for free
        // (the bucket is usually empty now, one `u32` read).
        self.cached = self.day_min(c.bucket, d);
        if self.heads.len() > MIN_BUCKETS && self.len * 8 < self.heads.len() {
            self.resize();
        }
        e
    }

    /// Unlink `c` from its bucket list, park the slot on the freelist, and
    /// return the entry.
    fn unlink(&mut self, c: Cached) -> EventEntry<W> {
        let next = self.slots[c.slot as usize].next;
        if c.prev == NIL {
            self.heads[c.bucket] = next;
        } else {
            self.slots[c.prev as usize].next = next;
        }
        let slot = &mut self.slots[c.slot as usize];
        let e = slot.e.take().expect("linked slot is live");
        slot.next = self.free;
        self.free = c.slot;
        self.len -= 1;
        e
    }
}

impl<W> Default for CalendarQueue<W> {
    fn default() -> Self {
        Self::new()
    }
}

impl<W> SchedulerBackend<W> for CalendarQueue<W> {
    fn push(&mut self, e: EventEntry<W>) {
        let d = e.time >> self.shift;
        if d < self.cur_day {
            self.cur_day = d;
        }
        let key = (e.time, e.seq);
        let idx = self.bucket_of(d);
        // Take a slot from the freelist (the steady state — no allocation)
        // or grow the slab; either way, prepend it to the bucket's list.
        let s = if self.free != NIL {
            let s = self.free;
            let slot = &mut self.slots[s as usize];
            self.free = slot.next;
            slot.e = Some(e);
            slot.next = self.heads[idx];
            s
        } else {
            let s = self.slots.len() as u32;
            assert!(s != NIL, "calendar slab exhausted");
            self.slots.push(Slot {
                e: Some(e),
                next: self.heads[idx],
            });
            s
        };
        self.heads[idx] = s;
        // Cache upkeep. Pushing into an empty queue makes the new entry the
        // minimum outright — that exact case is the resume hot path
        // (`advance(1)` pushes one wakeup into a drained queue), and
        // caching it spares the bucket scan in `min_key`. A key below a
        // known minimum replaces it; otherwise, prepending to the cached
        // entry's own bucket gives the old head a new predecessor.
        if self.len == 0 {
            self.cached = Some(Cached {
                key,
                bucket: idx,
                slot: s,
                prev: NIL,
            });
        } else if let Some(c) = &mut self.cached {
            if key < c.key {
                *c = Cached {
                    key,
                    bucket: idx,
                    slot: s,
                    prev: NIL,
                };
            } else if c.bucket == idx && c.prev == NIL {
                c.prev = s;
            }
        }
        self.len += 1;
        if self.len > self.heads.len() * 2 && self.heads.len() < MAX_BUCKETS {
            self.resize();
        }
    }

    fn min_key(&mut self) -> Option<(Time, u64)> {
        self.find_min().map(|c| c.key)
    }

    fn pop(&mut self) -> Option<EventEntry<W>> {
        let c = self.find_min()?;
        Some(self.take_min(c))
    }

    fn pop_le(&mut self, limit: Time) -> Result<EventEntry<W>, Option<Time>> {
        match self.find_min() {
            None => Err(None),
            Some(c) if c.key.0 > limit => Err(Some(c.key.0)),
            Some(c) => Ok(self.take_min(c)),
        }
    }

    fn cancel(&mut self, time: Time, seq: u64) -> Option<EventEntry<W>> {
        if self.len == 0 {
            return None;
        }
        let d = time >> self.shift;
        let idx = self.bucket_of(d);
        let mut prev = NIL;
        let mut s = self.heads[idx];
        while s != NIL {
            let slot = &self.slots[s as usize];
            let e = slot.e.as_ref().expect("linked slot is live");
            let next = slot.next;
            if e.time == time && e.seq == seq {
                // The unlink below may orphan the cache's `prev` pointer
                // (or remove the cached entry itself); cancellation is
                // rare, so just drop the cache if it referenced this
                // bucket at all.
                if self.cached.is_some_and(|c| c.bucket == idx) {
                    self.cached = None;
                }
                return Some(self.unlink(Cached {
                    key: (time, seq),
                    bucket: idx,
                    slot: s,
                    prev,
                }));
            }
            prev = s;
            s = next;
        }
        None
    }

    fn len(&self) -> usize {
        self.len
    }
}

/// Backend selection carried by [`crate::SimConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// The calendar queue (default).
    Calendar,
    /// The original `BinaryHeap` — the determinism oracle.
    Oracle,
}

impl Backend {
    /// Default backend, overridable with `RUCX_SCHED_BACKEND=oracle` (or
    /// `heap`) to rerun any simulation on the sequential oracle queue.
    pub fn from_env() -> Backend {
        match std::env::var("RUCX_SCHED_BACKEND").as_deref() {
            Ok("oracle") | Ok("heap") => Backend::Oracle,
            _ => Backend::Calendar,
        }
    }
}

impl Default for Backend {
    fn default() -> Self {
        Backend::from_env()
    }
}

/// Statically-dispatched backend pair the scheduler embeds.
pub(crate) enum QueueImpl<W> {
    Oracle(OracleQueue<W>),
    Calendar(CalendarQueue<W>),
}

impl<W> QueueImpl<W> {
    pub(crate) fn new(backend: Backend) -> Self {
        match backend {
            Backend::Oracle => QueueImpl::Oracle(OracleQueue::new()),
            Backend::Calendar => QueueImpl::Calendar(CalendarQueue::new()),
        }
    }

    pub(crate) fn backend(&self) -> Backend {
        match self {
            QueueImpl::Oracle(_) => Backend::Oracle,
            QueueImpl::Calendar(_) => Backend::Calendar,
        }
    }

    #[inline]
    pub(crate) fn push(&mut self, e: EventEntry<W>) {
        match self {
            QueueImpl::Oracle(q) => q.push(e),
            QueueImpl::Calendar(q) => q.push(e),
        }
    }

    #[inline]
    pub(crate) fn min_key(&mut self) -> Option<(Time, u64)> {
        match self {
            QueueImpl::Oracle(q) => q.min_key(),
            QueueImpl::Calendar(q) => q.min_key(),
        }
    }

    #[cfg(test)]
    pub(crate) fn pop(&mut self) -> Option<EventEntry<W>> {
        match self {
            QueueImpl::Oracle(q) => q.pop(),
            QueueImpl::Calendar(q) => q.pop(),
        }
    }

    #[inline]
    pub(crate) fn pop_le(&mut self, limit: Time) -> Result<EventEntry<W>, Option<Time>> {
        match self {
            QueueImpl::Oracle(q) => q.pop_le(limit),
            QueueImpl::Calendar(q) => q.pop_le(limit),
        }
    }

    pub(crate) fn cancel(&mut self, time: Time, seq: u64) -> Option<EventEntry<W>> {
        match self {
            QueueImpl::Oracle(q) => q.cancel(time, seq),
            QueueImpl::Calendar(q) => q.cancel(time, seq),
        }
    }

    pub(crate) fn len(&self) -> usize {
        match self {
            QueueImpl::Oracle(q) => SchedulerBackend::len(q),
            QueueImpl::Calendar(q) => SchedulerBackend::len(q),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::EventPayload;

    type W = Vec<u64>;

    fn entry(time: Time, seq: u64) -> EventEntry<W> {
        EventEntry {
            time,
            seq,
            payload: EventPayload::Closure(Box::new(|_, _| {})),
        }
    }

    fn drain_keys(q: &mut impl SchedulerBackend<W>) -> Vec<(Time, u64)> {
        let mut out = Vec::new();
        while let Some(e) = q.pop() {
            out.push((e.time, e.seq));
        }
        out
    }

    #[test]
    fn calendar_orders_ties_by_seq() {
        let mut q = CalendarQueue::<W>::new();
        q.push(entry(10, 2));
        q.push(entry(10, 0));
        q.push(entry(5, 1));
        q.push(entry(10, 3));
        assert_eq!(q.min_key(), Some((5, 1)));
        assert_eq!(drain_keys(&mut q), vec![(5, 1), (10, 0), (10, 2), (10, 3)]);
        assert!(q.is_empty());
    }

    #[test]
    fn calendar_survives_year_wrap_and_far_future() {
        let mut q = CalendarQueue::<W>::new();
        // Same bucket, different years (shift 10, 256 buckets ⇒ year is
        // 256 KiB of ns): entries a year apart must not interleave.
        let year = 1u64 << (10 + 8);
        q.push(entry(3 * year + 7, 0));
        q.push(entry(7, 1));
        q.push(entry(year + 7, 2));
        assert_eq!(
            drain_keys(&mut q),
            vec![(7, 1), (year + 7, 2), (3 * year + 7, 0)]
        );
        // Far beyond any year: direct-search fallback.
        q.push(entry(u64::MAX / 2, 5));
        assert_eq!(q.min_key(), Some((u64::MAX / 2, 5)));
        assert_eq!(q.pop().map(|e| e.seq), Some(5));
    }

    #[test]
    fn calendar_resizes_under_load_both_ways() {
        let mut q = CalendarQueue::<W>::new();
        let n = 10_000u64;
        for i in 0..n {
            q.push(entry(i * 3, i));
        }
        assert!(q.heads.len() > MIN_BUCKETS, "growth must have triggered");
        for i in 0..n {
            let e = q.pop().expect("entry present");
            assert_eq!((e.time, e.seq), (i * 3, i));
        }
        assert_eq!(q.heads.len(), MIN_BUCKETS, "shrink must have triggered");
        assert!(q.min_key().is_none());
    }

    #[test]
    fn resize_with_all_equal_timestamps_collapses_to_single_time_buckets() {
        let mut q = CalendarQueue::<W>::new();
        // More than 2x MIN_BUCKETS pushes at one timestamp force a growth
        // resize whose strided gap samples are all ties: every gap is zero,
        // and the width estimator must degrade to its 1 ns floor (shift 0)
        // rather than underflow in the leading-zeros shift computation.
        let n = (MIN_BUCKETS * 2 + 1) as u64;
        for s in 0..n {
            q.push(entry(1 << 20, s));
        }
        assert!(q.heads.len() > MIN_BUCKETS, "growth must have triggered");
        assert_eq!(q.shift, 0, "all-tie samples pick single-time buckets");
        let keys = drain_keys(&mut q);
        assert_eq!(keys.len(), n as usize);
        for (i, k) in keys.iter().enumerate() {
            assert_eq!(*k, (1 << 20, i as u64), "ties must drain in seq order");
        }
    }

    #[test]
    fn resize_with_fewer_than_two_samples_keeps_the_width() {
        let mut q = CalendarQueue::<W>::new();
        let before = q.shift;
        // Zero entries: no gap samples at all.
        q.resize();
        assert_eq!(q.shift, before, "empty resize must keep the width");
        // One entry: a single sampled time still yields no gaps.
        q.push(entry(42, 0));
        q.resize();
        assert_eq!(q.shift, before, "one-sample resize must keep the width");
        assert_eq!(q.min_key(), Some((42, 0)));
        assert_eq!(drain_keys(&mut q), vec![(42, 0)]);
    }

    #[test]
    fn cancel_removes_exactly_one_key() {
        let mut q = CalendarQueue::<W>::new();
        for s in 0..10 {
            q.push(entry(100, s));
        }
        assert!(q.cancel(100, 4).is_some());
        assert!(q.cancel(100, 4).is_none(), "already cancelled");
        assert!(q.cancel(101, 5).is_none(), "wrong time");
        let keys = drain_keys(&mut q);
        assert_eq!(keys.len(), 9);
        assert!(!keys.contains(&(100, 4)));
    }

    /// Raw queue-op cost, outside the dispatch loop (run with
    /// `cargo test --release -p rucx-sim -- --ignored profile --nocapture`).
    #[test]
    #[ignore]
    fn profile_drain() {
        use std::time::Instant;
        for round in 0..5 {
            let mut q = CalendarQueue::<W>::new();
            for i in 0..100_000u64 {
                q.push(entry(i, i));
            }
            let t0 = Instant::now();
            while q.pop().is_some() {}
            let cal = t0.elapsed();
            let mut q = OracleQueue::<W>::new();
            for i in 0..100_000u64 {
                q.push(entry(i, i));
            }
            let t0 = Instant::now();
            while q.pop().is_some() {}
            let ora = t0.elapsed();
            let mut q = CalendarQueue::<W>::new();
            for i in 0..100_000u64 {
                q.push(entry(i, i));
            }
            let t0 = Instant::now();
            drop(q);
            eprintln!(
                "round {round}: calendar drain {cal:?}, oracle drain {ora:?}, dealloc-only {:?}",
                t0.elapsed()
            );
        }
    }

    /// Satellite: ≥64 seeded cases driving the calendar and the heap oracle
    /// through identical operation sequences — heavy timestamp ties,
    /// zero-delay (same-time) pushes interleaved mid-drain, and random
    /// cancellations — asserting byte-identical `(time, seq)` pop streams.
    #[test]
    fn calendar_matches_oracle_pop_order() {
        rucx_compat::check::check_with("calendar_matches_oracle", 64, |g| {
            let mut cal = CalendarQueue::<W>::new();
            let mut ora = OracleQueue::<W>::new();
            let mut cal_out = Vec::new();
            let mut ora_out = Vec::new();
            let mut live: Vec<(Time, u64)> = Vec::new();
            let mut seq = 0u64;
            let mut now = 0u64; // monotone floor, mirrors Scheduler::now
            let ops = g.usize(50..400);
            for _ in 0..ops {
                match g.u32(0..10) {
                    // Push: clustered times with heavy ties, occasionally a
                    // zero-delay self-send (exactly `now`).
                    0..=5 => {
                        let t = match g.u32(0..4) {
                            0 => now, // zero-delay
                            1 => now + g.u64(0..4),
                            2 => now + g.u64(0..1000),
                            _ => now + (1 << g.u32(0..30)) + g.u64(0..8),
                        };
                        cal.push(entry(t, seq));
                        ora.push(entry(t, seq));
                        live.push((t, seq));
                        seq += 1;
                    }
                    // Pop from both; keys must match.
                    6..=8 => {
                        let a = cal.pop().map(|e| (e.time, e.seq));
                        let b = ora.pop().map(|e| (e.time, e.seq));
                        assert_eq!(a, b, "pop diverged (case {:#x})", g.case_seed);
                        if let Some(k) = a {
                            assert!(k.0 >= now, "time went backwards");
                            now = k.0;
                            live.retain(|x| *x != k);
                            cal_out.push(k);
                            ora_out.push(k);
                        }
                    }
                    // Cancel a random live key (or a bogus one).
                    _ => {
                        let key = if !live.is_empty() && g.bool() {
                            live[g.usize(0..live.len())]
                        } else {
                            (now + g.u64(0..100), seq + 1000)
                        };
                        let a = cal.cancel(key.0, key.1).map(|e| (e.time, e.seq));
                        let b = ora.cancel(key.0, key.1).map(|e| (e.time, e.seq));
                        assert_eq!(a, b, "cancel diverged (case {:#x})", g.case_seed);
                        if a.is_some() {
                            live.retain(|x| *x != key);
                        }
                    }
                }
                assert_eq!(cal.len(), ora.len());
            }
            // Drain the remainder: the full tail must agree too.
            cal_out.extend(drain_keys(&mut cal));
            ora_out.extend(drain_keys(&mut ora));
            assert_eq!(cal_out, ora_out, "drain diverged (case {:#x})", g.case_seed);
        });
    }
}
