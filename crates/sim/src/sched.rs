//! The event scheduler: virtual clock, event queue, and wait primitives.
//!
//! The scheduler is deliberately separate from the [`crate::Simulation`]
//! driver so that model code (event closures, world calls) can schedule
//! further events and fire triggers while the world is mutably borrowed
//! alongside it: every event closure receives `(&mut W, &mut Scheduler<W>)`.

#![allow(clippy::type_complexity)]

use std::cmp::Ordering;
use std::collections::VecDeque;

use crate::calendar::{Backend, QueueImpl};
use crate::process::ProcCtx;
use crate::time::{Duration, Time};
use crate::trace::TraceSink;

/// Identifier of a simulated process (index into the process table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProcId(pub(crate) u32);

impl ProcId {
    /// Raw index of this process.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One-shot latch a process can block on. Created by
/// [`Scheduler::new_trigger`], fired at most once by [`Scheduler::fire`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Trigger(pub(crate) u32);

impl Trigger {
    /// Construct a handle from a raw id. Only for tests and placeholder
    /// values; a handle not produced by [`Scheduler::new_trigger`] must not
    /// be waited on or fired.
    #[doc(hidden)]
    pub fn from_raw(id: u32) -> Self {
        Trigger(id)
    }
}

/// Reusable wakeup source with an epoch counter (condition-variable style).
///
/// A process snapshots the epoch, re-checks its predicate against world
/// state, and then waits for the epoch to move past the snapshot; every
/// [`Scheduler::notify`] advances the epoch and wakes all current waiters.
/// This is the lost-wakeup-free primitive PE schedulers idle on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Notify(pub(crate) u32);

impl Notify {
    /// See [`Trigger::from_raw`]; same caveats apply.
    #[doc(hidden)]
    pub fn from_raw(id: u32) -> Self {
        Notify(id)
    }
}

/// A scheduled event: either a model closure or a process wakeup.
pub(crate) enum EventPayload<W> {
    Closure(Box<dyn FnOnce(&mut W, &mut Scheduler<W>) + Send>),
    WakeProc(ProcId),
}

/// A queued event: a `(time, seq)` key (unique; `seq` breaks timestamp
/// ties FIFO) plus its payload. Public so queue backends
/// ([`crate::calendar::SchedulerBackend`]) can be implemented; the payload
/// itself stays crate-private.
pub struct EventEntry<W> {
    pub time: Time,
    pub seq: u64,
    pub(crate) payload: EventPayload<W>,
}

/// Opaque handle for a cancellable event, returned by
/// [`Scheduler::schedule_cancellable_at`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventKey {
    time: Time,
    seq: u64,
}

impl EventKey {
    /// The virtual time the event will run at (unless cancelled).
    pub fn time(&self) -> Time {
        self.time
    }
}

/// Result of [`Scheduler::pop_due`]: one queue probe answers "is there an
/// event at or before `limit`, and if so hand it over" — the dispatch loop
/// shape that replaces the old peek-then-pop double heap access.
pub(crate) enum Due<W> {
    /// Minimum event was at or before the limit; it has been popped.
    Event(EventEntry<W>),
    /// The queue is non-empty but its minimum lies after the limit.
    Later(#[allow(dead_code)] Time),
    /// The queue is empty.
    Empty,
}

impl<W> PartialEq for EventEntry<W> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<W> Eq for EventEntry<W> {}
impl<W> PartialOrd for EventEntry<W> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<W> Ord for EventEntry<W> {
    // Reversed: BinaryHeap is a max-heap, we want earliest (time, seq) first.
    fn cmp(&self, other: &Self) -> Ordering {
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

struct TriggerState {
    fired: bool,
    waiters: Vec<ProcId>,
}

struct NotifyState {
    epoch: u64,
    waiters: Vec<ProcId>,
}

pub(crate) struct PendingSpawn<W> {
    pub name: String,
    pub start: Time,
    pub body: Box<dyn FnOnce(&mut ProcCtx<W>) + Send + 'static>,
}

/// Event scheduler and wait-primitive registry.
///
/// `W` is the *world* type: the single-threaded, mutable model state (GPUs,
/// network, communication library state). The scheduler never touches the
/// world itself; it only sequences closures that do.
pub struct Scheduler<W> {
    now: Time,
    seq: u64,
    events_executed: u64,
    queue: QueueImpl<W>,
    triggers: Vec<TriggerState>,
    free_triggers: Vec<u32>,
    notifies: Vec<NotifyState>,
    /// Processes runnable at the current virtual time, in wake order.
    pub(crate) runnable: VecDeque<ProcId>,
    pub(crate) pending_spawns: Vec<PendingSpawn<W>>,
    stopped: bool,
    /// Structured trace sink (see [`crate::trace`]): ring-buffered typed
    /// events stamped with virtual time, disabled (and free) by default.
    pub trace: TraceSink,
}

impl<W> Default for Scheduler<W> {
    fn default() -> Self {
        Self::new()
    }
}

impl<W> Scheduler<W> {
    /// Scheduler on the default queue backend (the calendar queue, unless
    /// `RUCX_SCHED_BACKEND=oracle` selects the heap oracle).
    pub fn new() -> Self {
        Self::with_backend(Backend::from_env())
    }

    /// Scheduler on an explicit queue backend.
    pub fn with_backend(backend: Backend) -> Self {
        Scheduler {
            now: 0,
            seq: 0,
            events_executed: 0,
            queue: QueueImpl::new(backend),
            triggers: Vec::new(),
            free_triggers: Vec::new(),
            notifies: Vec::new(),
            runnable: VecDeque::new(),
            pending_spawns: Vec::new(),
            stopped: false,
            trace: TraceSink::new(),
        }
    }

    /// Which queue backend this scheduler runs on.
    pub fn backend(&self) -> Backend {
        self.queue.backend()
    }

    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> Time {
        self.now
    }

    /// Number of events dispatched so far.
    pub fn events_executed(&self) -> u64 {
        self.events_executed
    }

    /// Request that the simulation loop stop after the current dispatch.
    pub fn stop(&mut self) {
        self.stopped = true;
    }

    pub(crate) fn is_stopped(&self) -> bool {
        self.stopped
    }

    pub(crate) fn clear_stopped(&mut self) {
        self.stopped = false;
    }

    /// True if structured tracing is enabled (lets hot paths skip building
    /// event arguments).
    #[inline]
    pub fn tracing(&self) -> bool {
        self.trace.enabled()
    }

    /// Record a trace instant at the current virtual time.
    #[inline]
    pub fn trace_instant(&mut self, name: &'static str, pe: u32, id: u64, arg: u64) {
        if self.trace.enabled() {
            self.trace.instant(name, self.now, pe, id, arg);
        }
    }

    /// Record a trace span `[start, end]` (virtual times).
    #[inline]
    pub fn trace_span(
        &mut self,
        name: &'static str,
        start: Time,
        end: Time,
        pe: u32,
        id: u64,
        arg: u64,
    ) {
        if self.trace.enabled() {
            self.trace.span(name, start, end, pe, id, arg);
        }
    }

    /// Record a trace span starting at the current time and lasting `dur` —
    /// the shape protocol code uses when it schedules work `dur` ahead.
    #[inline]
    pub fn trace_span_in(&mut self, name: &'static str, dur: Duration, pe: u32, id: u64, arg: u64) {
        if self.trace.enabled() {
            self.trace
                .span(name, self.now, self.now.saturating_add(dur), pe, id, arg);
        }
    }

    /// Schedule `f` to run on the world at absolute time `t` (clamped to the
    /// present: scheduling in the past runs at the current time).
    pub fn schedule_at(
        &mut self,
        t: Time,
        f: impl FnOnce(&mut W, &mut Scheduler<W>) + Send + 'static,
    ) {
        let t = t.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(EventEntry {
            time: t,
            seq,
            payload: EventPayload::Closure(Box::new(f)),
        });
    }

    /// Schedule `f` to run `dt` after the current time.
    pub fn schedule_in(
        &mut self,
        dt: Duration,
        f: impl FnOnce(&mut W, &mut Scheduler<W>) + Send + 'static,
    ) {
        self.schedule_at(self.now.saturating_add(dt), f);
    }

    /// Like [`Scheduler::schedule_at`], but returns a key that can later be
    /// passed to [`Scheduler::cancel`] to withdraw the event (timeouts,
    /// retransmission timers).
    pub fn schedule_cancellable_at(
        &mut self,
        t: Time,
        f: impl FnOnce(&mut W, &mut Scheduler<W>) + Send + 'static,
    ) -> EventKey {
        let t = t.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(EventEntry {
            time: t,
            seq,
            payload: EventPayload::Closure(Box::new(f)),
        });
        EventKey { time: t, seq }
    }

    /// Withdraw a previously scheduled cancellable event. Returns `true` if
    /// the event was still queued (and is now dropped), `false` if it
    /// already ran or was already cancelled.
    pub fn cancel(&mut self, key: EventKey) -> bool {
        self.queue.cancel(key.time, key.seq).is_some()
    }

    pub(crate) fn schedule_wake(&mut self, t: Time, p: ProcId) {
        let t = t.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(EventEntry {
            time: t,
            seq,
            payload: EventPayload::WakeProc(p),
        });
    }

    #[cfg(test)]
    pub(crate) fn pop_event(&mut self) -> Option<EventEntry<W>> {
        let e = self.queue.pop();
        if e.is_some() {
            self.events_executed += 1;
        }
        e
    }

    /// Pop the minimum event only if it is due at or before `limit`; one
    /// queue probe for the whole dispatch decision.
    pub(crate) fn pop_due(&mut self, limit: Time) -> Due<W> {
        match self.queue.pop_le(limit) {
            Ok(e) => {
                self.events_executed += 1;
                Due::Event(e)
            }
            Err(Some(t)) => Due::Later(t),
            Err(None) => Due::Empty,
        }
    }

    pub(crate) fn peek_time(&mut self) -> Option<Time> {
        self.queue.min_key().map(|(t, _)| t)
    }

    pub(crate) fn set_now(&mut self, t: Time) {
        debug_assert!(t >= self.now, "virtual time must be monotone");
        self.now = t;
    }

    /// Queue a new simulated process for creation; the simulation driver
    /// drains these. Usable from world calls and event closures, so runtimes
    /// can create workers dynamically.
    pub fn spawn_process(
        &mut self,
        name: impl Into<String>,
        start: Time,
        body: impl FnOnce(&mut ProcCtx<W>) + Send + 'static,
    ) {
        self.pending_spawns.push(PendingSpawn {
            name: name.into(),
            start: start.max(self.now),
            body: Box::new(body),
        });
    }

    // ---- Triggers ----------------------------------------------------

    /// Create a new unfired one-shot trigger (recycled ids are reused).
    pub fn new_trigger(&mut self) -> Trigger {
        if let Some(id) = self.free_triggers.pop() {
            let st = &mut self.triggers[id as usize];
            st.fired = false;
            debug_assert!(st.waiters.is_empty());
            return Trigger(id);
        }
        let id = self.triggers.len() as u32;
        self.triggers.push(TriggerState {
            fired: false,
            waiters: Vec::new(),
        });
        Trigger(id)
    }

    /// Return a trigger's slot to the free list for reuse.
    ///
    /// The caller must be the sole remaining owner of the handle: recycling
    /// a trigger another component still waits on (or will wait on) aliases
    /// two logically distinct completions onto one slot.
    pub fn recycle_trigger(&mut self, t: Trigger) {
        let st = &mut self.triggers[t.0 as usize];
        assert!(
            st.waiters.is_empty(),
            "cannot recycle a trigger with parked waiters"
        );
        self.free_triggers.push(t.0);
    }

    /// Fire a trigger, waking every process waiting on it at the current
    /// virtual time. Firing an already-fired trigger is a no-op.
    pub fn fire(&mut self, t: Trigger) {
        let st = &mut self.triggers[t.0 as usize];
        if st.fired {
            return;
        }
        st.fired = true;
        let waiters = std::mem::take(&mut st.waiters);
        self.runnable.extend(waiters);
    }

    /// Whether the trigger has fired.
    pub fn fired(&self, t: Trigger) -> bool {
        self.triggers[t.0 as usize].fired
    }

    pub(crate) fn add_trigger_waiter(&mut self, t: Trigger, p: ProcId) -> bool {
        let st = &mut self.triggers[t.0 as usize];
        if st.fired {
            false
        } else {
            st.waiters.push(p);
            true
        }
    }

    // ---- Notifies ----------------------------------------------------

    /// Create a new notification source (epoch 0).
    pub fn new_notify(&mut self) -> Notify {
        let id = self.notifies.len() as u32;
        self.notifies.push(NotifyState {
            epoch: 0,
            waiters: Vec::new(),
        });
        Notify(id)
    }

    /// Advance the notify epoch and wake all current waiters.
    pub fn notify(&mut self, n: Notify) {
        let st = &mut self.notifies[n.0 as usize];
        st.epoch += 1;
        let waiters = std::mem::take(&mut st.waiters);
        self.runnable.extend(waiters);
    }

    /// Current epoch of a notify source.
    pub fn notify_epoch(&self, n: Notify) -> u64 {
        self.notifies[n.0 as usize].epoch
    }

    /// Returns true if the process was parked (epoch unchanged), false if the
    /// epoch already moved past `seen` (process stays runnable).
    pub(crate) fn add_notify_waiter(&mut self, n: Notify, seen: u64, p: ProcId) -> bool {
        let st = &mut self.notifies[n.0 as usize];
        if st.epoch != seen {
            false
        } else {
            st.waiters.push(p);
            true
        }
    }

    /// Number of events currently queued (for tests/diagnostics).
    pub fn queued_events(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type S = Scheduler<Vec<u32>>;

    #[test]
    fn event_order_is_time_then_fifo() {
        let mut s = S::new();
        s.schedule_at(10, |w, _| w.push(1));
        s.schedule_at(5, |w, _| w.push(2));
        s.schedule_at(10, |w, _| w.push(3));
        let mut world = Vec::new();
        // Manual mini-loop (the real one lives in Simulation).
        while let Some(e) = s.pop_event() {
            s.set_now(e.time);
            match e.payload {
                EventPayload::Closure(f) => f(&mut world, &mut s),
                EventPayload::WakeProc(_) => unreachable!(),
            }
        }
        assert_eq!(world, vec![2, 1, 3]);
        assert_eq!(s.now(), 10);
        assert_eq!(s.events_executed(), 3);
    }

    #[test]
    fn schedule_in_past_clamps_to_now() {
        let mut s = S::new();
        s.set_now(100);
        s.schedule_at(50, |w, _| w.push(1));
        let e = s.pop_event().unwrap();
        assert_eq!(e.time, 100);
    }

    #[test]
    fn cancellable_events_cancel_once_and_skip_execution() {
        let mut s = S::new();
        s.schedule_at(5, |w, _| w.push(1));
        let k = s.schedule_cancellable_at(6, |w, _| w.push(2));
        let k2 = s.schedule_cancellable_at(7, |w, _| w.push(3));
        assert!(s.cancel(k));
        assert!(!s.cancel(k), "second cancel is a no-op");
        let mut world = Vec::new();
        while let Some(e) = s.pop_event() {
            s.set_now(e.time);
            match e.payload {
                EventPayload::Closure(f) => f(&mut world, &mut s),
                EventPayload::WakeProc(_) => unreachable!(),
            }
        }
        assert_eq!(world, vec![1, 3], "cancelled event must not run");
        assert!(!s.cancel(k2), "cancel after execution reports false");
    }

    #[test]
    fn pop_due_respects_the_limit() {
        let mut s = S::new();
        s.schedule_at(5, |w, _| w.push(1));
        s.schedule_at(20, |w, _| w.push(2));
        match s.pop_due(10) {
            Due::Event(e) => assert_eq!(e.time, 5),
            _ => panic!("event at 5 is due by 10"),
        }
        match s.pop_due(10) {
            Due::Later(t) => assert_eq!(t, 20),
            _ => panic!("event at 20 is beyond 10"),
        }
        match s.pop_due(20) {
            Due::Event(e) => assert_eq!(e.time, 20),
            _ => panic!("event at 20 is due by 20"),
        }
        assert!(matches!(s.pop_due(u64::MAX), Due::Empty));
    }

    #[test]
    fn trigger_fire_is_idempotent_and_wakes_waiters() {
        let mut s = S::new();
        let t = s.new_trigger();
        assert!(!s.fired(t));
        assert!(s.add_trigger_waiter(t, ProcId(7)));
        s.fire(t);
        assert!(s.fired(t));
        assert_eq!(s.runnable.pop_front(), Some(ProcId(7)));
        s.fire(t); // no-op
        assert!(s.runnable.is_empty());
        // Waiting on a fired trigger does not park.
        assert!(!s.add_trigger_waiter(t, ProcId(8)));
    }

    #[test]
    fn notify_epoch_prevents_lost_wakeups() {
        let mut s = S::new();
        let n = s.new_notify();
        let seen = s.notify_epoch(n);
        s.notify(n); // epoch moves before the waiter parks
        assert!(!s.add_notify_waiter(n, seen, ProcId(1)), "must not park");
        let seen2 = s.notify_epoch(n);
        assert!(s.add_notify_waiter(n, seen2, ProcId(2)));
        s.notify(n);
        assert_eq!(s.runnable.pop_front(), Some(ProcId(2)));
    }

    #[test]
    fn nested_scheduling_from_events() {
        let mut s = S::new();
        s.schedule_at(1, |w, s| {
            w.push(1);
            s.schedule_in(4, |w, _| w.push(2));
        });
        let mut world = Vec::new();
        while let Some(e) = s.pop_event() {
            s.set_now(e.time);
            match e.payload {
                EventPayload::Closure(f) => f(&mut world, &mut s),
                EventPayload::WakeProc(_) => unreachable!(),
            }
        }
        assert_eq!(world, vec![1, 2]);
        assert_eq!(s.now(), 5);
    }
}
