//! # rucx-sim — deterministic discrete-event simulation engine
//!
//! Foundation of the `rucx` reproduction of *GPU-aware Communication with
//! UCX in Parallel Programming Models* (IPDPSW 2021). All hardware the paper
//! evaluates on (Summit's GPUs, NVLink, X-Bus, EDR InfiniBand) is simulated;
//! this crate provides the virtual clock, the event queue, and *simulated
//! processes* — bodies hosted on pooled OS threads that execute strictly one
//! at a time: all run state travels between threads as a single baton (a
//! boxed core handed through one-slot rendezvous cells), so runtime layers
//! above can write natural blocking code (an `MPI_Recv` that simply does
//! not return until virtual time reaches message arrival) while the whole
//! simulation stays deterministic — and a process resuming from its own
//! wakeup never pays a context switch at all.
//!
//! ## Architecture
//!
//! - [`Scheduler`] — virtual clock, `(time, seq)`-ordered event queue, and
//!   wait primitives ([`Trigger`] one-shot latches, [`Notify`]
//!   epoch-counting condition variables).
//! - [`Simulation`] — owns the world `W` (all model state), the scheduler,
//!   and the process table; runs the main loop.
//! - [`ProcCtx`] — handed to each process body; `advance` models local
//!   compute, `with_world` gives synchronous mutating access to model
//!   state, `with_world_ref` is the read-only fast path — both direct
//!   calls against the core this thread holds — and
//!   `wait`/`wait_notify`/`wait_until` park the process.
//! - [`ProcessPool`] — reusable OS threads backing the processes.
//!   [`Simulation::spawn`] leases a worker instead of spawning a fresh
//!   thread, and teardown returns workers to the pool, so workloads that
//!   build many simulations back to back don't pay thread creation each
//!   time.
//!
//! Determinism: events are dispatched in `(time, insertion order)`; processes
//! woken at the same instant run in wake order; exactly one thread holds the
//! core at any moment, so the world is only ever touched by the running
//! context. Dispatch order is independent of which OS thread executes it,
//! and worker reuse carries no state between processes, so neither pooling
//! nor the baton handoffs perturb traces.

//!
//! ## Scale
//!
//! Two mechanisms keep 1536-PE sweeps tractable. The event queue is a
//! [`calendar::CalendarQueue`] (amortized O(1) push/pop; the original
//! `BinaryHeap` stays behind the same [`calendar::SchedulerBackend`] trait
//! as the determinism oracle, selectable via [`SimConfig::backend`] or
//! `RUCX_SCHED_BACKEND=oracle`). And [`shard::ShardedEngine`] advances
//! several independent simulations on OS threads under conservative
//! lookahead windows, exchanging cross-shard envelopes at barriers —
//! deterministic for any shard count.

pub mod calendar;
pub mod pool;
pub mod process;
pub mod rng;
pub mod sched;
pub mod shard;
pub mod sim;
pub mod stats;
pub mod time;
pub mod trace;

pub use calendar::{Backend, SchedulerBackend};
pub use pool::ProcessPool;
pub use process::ProcCtx;
pub use rng::SimRng;
pub use sched::{EventKey, Notify, ProcId, Scheduler, Trigger};
pub use shard::{
    Envelope, EnvelopeLease, EnvelopePool, Outbox, RouteDecision, RouteHook, RouteInfo, ShardStats,
    ShardedEngine, ShardedOutcome,
};
pub use sim::{RunOutcome, SimConfig, Simulation};
pub use stats::{Counters, DurationStats, Metric, MetricKind};
pub use time::{Duration, Time};
pub use trace::{Phase, TraceEvent, TraceSink};
