//! # rucx-sim — deterministic discrete-event simulation engine
//!
//! Foundation of the `rucx` reproduction of *GPU-aware Communication with
//! UCX in Parallel Programming Models* (IPDPSW 2021). All hardware the paper
//! evaluates on (Summit's GPUs, NVLink, X-Bus, EDR InfiniBand) is simulated;
//! this crate provides the virtual clock, the event queue, and *simulated
//! processes* — OS threads that execute strictly one at a time under a
//! rendezvous protocol with the driver, so runtime layers above can write
//! natural blocking code (an `MPI_Recv` that simply does not return until
//! virtual time reaches message arrival) while the whole simulation stays
//! deterministic.
//!
//! ## Architecture
//!
//! - [`Scheduler`] — virtual clock, `(time, seq)`-ordered event queue, and
//!   wait primitives ([`Trigger`] one-shot latches, [`Notify`]
//!   epoch-counting condition variables).
//! - [`Simulation`] — owns the world `W` (all model state), the scheduler,
//!   and the process table; runs the main loop.
//! - [`ProcCtx`] — handed to each process body; `advance` models local
//!   compute, `with_world` gives synchronous access to model state on the
//!   driver thread, `wait`/`wait_notify`/`wait_until` park the process.
//!
//! Determinism: events are dispatched in `(time, insertion order)`; processes
//! woken at the same instant run in wake order; only one process thread runs
//! at any moment, and the world is touched exclusively from the driver
//! thread.

pub mod process;
pub mod rng;
pub mod sched;
pub mod sim;
pub mod stats;
pub mod time;

pub use process::ProcCtx;
pub use rng::SimRng;
pub use sched::{Notify, ProcId, Scheduler, Trigger};
pub use sim::{RunOutcome, SimConfig, Simulation};
pub use stats::{Counters, DurationStats};
pub use time::{Duration, Time};
