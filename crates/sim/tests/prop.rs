//! Property-based tests of the simulation engine's core guarantees:
//! deterministic replay, monotone time, and exact wakeup semantics.
//!
//! Runs on the in-repo harness ([`rucx_compat::check`]): each property
//! executes ≥ 64 seeded cases; a failure prints the case seed, and
//! `RUCX_PROP_SEED=<seed>` replays exactly that case.

use rucx_compat::check::{check, Gen};
use rucx_sim::{RunOutcome, Simulation};

/// A small random program: per process, a list of (advance, value) steps.
fn gen_program(g: &mut Gen) -> Vec<Vec<(u64, u32)>> {
    g.vec(1..6, |g| g.vec(0..12, |g| (g.u64(0..50), g.u32(0..1000))))
}

/// The same program always produces the identical event trace.
#[test]
fn replay_is_deterministic() {
    check("replay_is_deterministic", |g| {
        let prog = gen_program(g);
        fn run(prog: &[Vec<(u64, u32)>]) -> (Vec<(u64, usize, u32)>, u64) {
            let mut sim = Simulation::new(Vec::<(u64, usize, u32)>::new());
            for (pi, steps) in prog.iter().enumerate() {
                let steps = steps.clone();
                sim.spawn(format!("p{pi}"), 0, move |ctx| {
                    for (dt, v) in steps {
                        ctx.advance(dt);
                        let now = ctx.now();
                        ctx.with_world(move |w, _| w.push((now, pi, v)));
                    }
                });
            }
            assert_eq!(sim.run(), RunOutcome::Completed);
            let end = sim.scheduler().now();
            (sim.world().clone(), end)
        }
        let a = run(&prog);
        let b = run(&prog);
        assert_eq!(a, b);
    });
}

/// Virtual time as observed by any process is monotone, and every
/// `advance(dt)` lands exactly `dt` later.
#[test]
fn advance_is_exact() {
    check("advance_is_exact", |g| {
        let steps = g.vec(1..50, |g| g.u64(0..1000));
        let mut sim = Simulation::new(());
        let expected: u64 = steps.iter().sum();
        sim.spawn("p", 0, move |ctx| {
            let mut t = 0u64;
            for dt in steps {
                ctx.advance(dt);
                t += dt;
                assert_eq!(ctx.now(), t);
            }
        });
        assert_eq!(sim.run(), RunOutcome::Completed);
        assert_eq!(sim.scheduler().now(), expected);
    });
}

/// Events fire in (time, insertion) order regardless of insertion order.
#[test]
fn event_order_is_stable_sort() {
    check("event_order_is_stable_sort", |g| {
        let times = g.vec(1..60, |g| g.u64(0..100));
        let mut sim = Simulation::new(Vec::<(u64, usize)>::new());
        for (i, &t) in times.iter().enumerate() {
            sim.scheduler().schedule_at(t, move |w, s| {
                w.push((s.now(), i));
            });
        }
        assert_eq!(sim.run(), RunOutcome::Completed);
        let fired = sim.world().clone();
        // Stable sort of (time, insertion index).
        let mut expected: Vec<(u64, usize)> = times.iter().copied().zip(0..).collect();
        expected.sort_by_key(|&(t, i)| (t, i));
        assert_eq!(fired, expected);
    });
}

/// A trigger fired at time T wakes all waiters at exactly T, regardless
/// of when they started waiting.
#[test]
fn trigger_wakes_exactly_at_fire_time() {
    check("trigger_wakes_exactly_at_fire_time", |g| {
        let fire_at = g.u64(1..1000);
        let waiter_starts = g.vec(1..8, |g| g.u64(0..1000));
        let mut sim = Simulation::new(Vec::<(usize, u64)>::new());
        let t = sim.scheduler().new_trigger();
        for (i, &start) in waiter_starts.iter().enumerate() {
            sim.spawn(format!("w{i}"), start, move |ctx| {
                ctx.wait(t);
                let now = ctx.now();
                ctx.with_world(move |w, _| w.push((i, now)));
            });
        }
        sim.scheduler().schedule_at(fire_at, move |_, s| s.fire(t));
        assert_eq!(sim.run(), RunOutcome::Completed);
        for &(i, woke) in sim.world().iter() {
            assert_eq!(woke, fire_at.max(waiter_starts[i]));
        }
    });
}
