//! Pool-scale smoke test: the jacobi_figures workload shape — many
//! `Simulation` lifetimes, ~1536 processes each — must lease, tear down,
//! and *reuse* pooled workers instead of spawning fresh OS threads per
//! simulation. Uses a private pool for exact thread accounting.

use std::sync::Arc;
use std::time::{Duration, Instant};

use rucx_sim::{ProcessPool, RunOutcome, SimConfig, Simulation};

const PROCS: usize = 1536;

fn config(pool: &Arc<ProcessPool>) -> SimConfig {
    let mut cfg = SimConfig::default();
    // Keep 1536 concurrent stacks cheap: these bodies are shallow.
    cfg.stack_size = 128 * 1024;
    cfg.pool = pool.clone();
    cfg
}

fn run_lifetime(pool: &Arc<ProcessPool>) {
    let mut sim = Simulation::with_config(0u64, config(pool));
    for i in 0..PROCS {
        sim.spawn(format!("p{i}"), (i % 7) as u64, |ctx| {
            ctx.advance(3);
            ctx.with_world(|w, _| *w += 1);
        });
    }
    // One process the run never resumes: its worker must still return to
    // the pool when the simulation is dropped (teardown unwinds it).
    let t = sim.scheduler().new_trigger();
    sim.spawn("never-resumed", 0, move |ctx| ctx.wait(t));
    match sim.run_until(100) {
        RunOutcome::TimeLimit | RunOutcome::Completed | RunOutcome::Deadlock(_) => {}
        other => panic!("unexpected outcome {other:?}"),
    }
    assert_eq!(*sim.world(), PROCS as u64);
    drop(sim);
}

#[test]
fn pool_reuses_workers_across_simulation_lifetimes() {
    let start = Instant::now();
    let pool = ProcessPool::new();

    run_lifetime(&pool);
    // All leased workers come back once the first simulation is gone.
    assert!(
        pool.wait_idle(PROCS + 1, Duration::from_secs(5)),
        "workers not returned after first lifetime: {pool:?}"
    );
    let created_after_first = pool.threads_created();
    assert!(
        created_after_first >= (PROCS + 1) as u64,
        "expected at least {} threads, created {created_after_first}",
        PROCS + 1
    );

    // A second lifetime on the same pool must not grow the thread count:
    // every process leases an idle worker from the first round.
    run_lifetime(&pool);
    assert!(
        pool.wait_idle(PROCS + 1, Duration::from_secs(5)),
        "workers not returned after second lifetime: {pool:?}"
    );
    assert_eq!(
        pool.threads_created(),
        created_after_first,
        "second simulation lifetime must reuse pooled workers"
    );
    assert_eq!(pool.leases(), 2 * (PROCS + 1) as u64);

    assert!(
        start.elapsed() < Duration::from_secs(5),
        "pool smoke took {:?}, budget is 5s",
        start.elapsed()
    );
}
