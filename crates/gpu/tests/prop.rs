//! Property-based tests of the memory pool: accounting, data integrity,
//! and bounds checking under random allocate/free/write/copy sequences.
//!
//! Runs on the in-repo harness ([`rucx_compat::check`]); failing cases
//! print a seed replayable with `RUCX_PROP_SEED=<seed>`.

use rucx_compat::check::{check_with, Gen};
use rucx_gpu::{DeviceId, MemPool, MemRef};

#[derive(Debug, Clone)]
enum Op {
    AllocDevice { dev: u8, size: u16 },
    AllocHost { pinned: bool, size: u16 },
    Free { idx: u8 },
    Write { idx: u8, seed: u8 },
    CopyBetween { a: u8, b: u8 },
}

fn gen_op(g: &mut Gen) -> Op {
    match g.usize(0..5) {
        0 => Op::AllocDevice {
            dev: g.u8(0..4),
            size: g.u16(1..512),
        },
        1 => Op::AllocHost {
            pinned: g.bool(),
            size: g.u16(1..512),
        },
        2 => Op::Free { idx: g.any_u8() },
        3 => Op::Write {
            idx: g.any_u8(),
            seed: g.any_u8(),
        },
        _ => Op::CopyBetween {
            a: g.any_u8(),
            b: g.any_u8(),
        },
    }
}

fn pattern(len: u64, seed: u8) -> Vec<u8> {
    (0..len)
        .map(|i| (i as u8).wrapping_mul(37).wrapping_add(seed))
        .collect()
}

/// A shadow model of the pool stays in sync under random operations.
#[test]
fn pool_matches_shadow_model() {
    check_with("pool_matches_shadow_model", 128, |g| {
        let ops = g.vec(1..80, gen_op);
        let mut pool = MemPool::new(4, 1 << 20, 1);
        // live: (ref, shadow contents)
        let mut live: Vec<(MemRef, Vec<u8>)> = Vec::new();
        let mut device_used = [0u64; 4];
        let mut host_used = 0u64;

        for op in ops {
            match op {
                Op::AllocDevice { dev, size } => {
                    let r = pool
                        .alloc_device(DeviceId(dev as u32), size as u64, true)
                        .unwrap();
                    device_used[dev as usize] += size as u64;
                    live.push((r, vec![0u8; size as usize]));
                }
                Op::AllocHost { pinned, size } => {
                    let r = pool.alloc_host(0, size as u64, pinned, true);
                    host_used += size as u64;
                    live.push((r, vec![0u8; size as usize]));
                }
                Op::Free { idx } => {
                    if live.is_empty() {
                        continue;
                    }
                    let (r, _) = live.remove(idx as usize % live.len());
                    match pool.kind(r.id).unwrap() {
                        rucx_gpu::MemKind::Device(d) => device_used[d.index()] -= r.len,
                        _ => host_used -= r.len,
                    }
                    pool.free(r.id).unwrap();
                    // Double free must fail.
                    assert!(pool.free(r.id).is_err());
                }
                Op::Write { idx, seed } => {
                    if live.is_empty() {
                        continue;
                    }
                    let i = idx as usize % live.len();
                    let (r, shadow) = &mut live[i];
                    let data = pattern(r.len, seed);
                    pool.write(*r, &data).unwrap();
                    *shadow = data;
                }
                Op::CopyBetween { a, b } => {
                    if live.len() < 2 {
                        continue;
                    }
                    let ia = a as usize % live.len();
                    let ib = b as usize % live.len();
                    if ia == ib {
                        continue;
                    }
                    let (ra, sa) = (live[ia].0, live[ia].1.clone());
                    let (rb, _) = live[ib];
                    let n = ra.len.min(rb.len);
                    pool.copy(ra.slice(0, n), rb.slice(0, n)).unwrap();
                    let shadow_b = &mut live[ib].1;
                    shadow_b[..n as usize].copy_from_slice(&sa[..n as usize]);
                }
            }
            // Invariants after every op.
            for (r, shadow) in &live {
                assert_eq!(&pool.read(*r).unwrap(), shadow);
            }
            for d in 0..4u32 {
                assert_eq!(pool.device_used(DeviceId(d)), device_used[d as usize]);
            }
            assert_eq!(pool.host_used(0), host_used);
            assert_eq!(pool.live_allocations(), live.len());
        }
    });
}

/// Slices read back exactly the window they cover.
#[test]
fn slice_reads_window() {
    check_with("slice_reads_window", 128, |g| {
        let size = g.u64(1..1024);
        let off_frac = g.f64(0.0..1.0);
        let len_frac = g.f64(0.0..1.0);
        let seed = g.any_u8();
        let mut pool = MemPool::new(1, 1 << 20, 1);
        let r = pool.alloc_host(0, size, true, true);
        let data = pattern(size, seed);
        pool.write(r, &data).unwrap();
        let off = (off_frac * size as f64) as u64 % size;
        let len = 1 + (len_frac * (size - off) as f64) as u64;
        let len = len.min(size - off);
        if len == 0 {
            return;
        }
        let s = r.slice(off, len);
        assert_eq!(
            pool.read(s).unwrap(),
            data[off as usize..(off + len) as usize].to_vec()
        );
    });
}
