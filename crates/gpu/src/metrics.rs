//! GPU-layer metrics registry: every counter the GPU model emits, declared
//! once as typed [`Metric`] handles (ad-hoc string literals at call sites
//! are rejected by `scripts/check.sh`).

use rucx_sim::Metric;

use crate::device::CopyPath;

/// Kernel launches completed.
pub const KERNEL: Metric = Metric::counter("gpu.kernel");

/// Copies by resolved intra-node path.
pub const COPY_ON_DEVICE: Metric = Metric::counter("gpu.copy.on_device");
pub const COPY_NVLINK: Metric = Metric::counter("gpu.copy.nvlink");
pub const COPY_XBUS: Metric = Metric::counter("gpu.copy.xbus");
pub const COPY_HOST_PINNED: Metric = Metric::counter("gpu.copy.host_pinned");
pub const COPY_HOST_PAGEABLE: Metric = Metric::counter("gpu.copy.host_pageable");
pub const COPY_HOST_MEM: Metric = Metric::counter("gpu.copy.host_mem");

/// The copy counter for a resolved path.
pub const fn copy_path(path: CopyPath) -> Metric {
    match path {
        CopyPath::OnDevice => COPY_ON_DEVICE,
        CopyPath::NvLink => COPY_NVLINK,
        CopyPath::XBus => COPY_XBUS,
        CopyPath::HostPinnedLink => COPY_HOST_PINNED,
        CopyPath::HostPageableLink => COPY_HOST_PAGEABLE,
        CopyPath::HostMem => COPY_HOST_MEM,
    }
}

/// Device-to-device transfer-path choices made by the communication layer
/// (CUDA-IPC rendezvous, striped multi-path legs). `resolve_path` silently
/// choosing the X-Bus over NVLink — or a transfer degrading to host
/// staging — used to be invisible; these make the choice observable.
pub const PATH_NVLINK: Metric = Metric::counter("gpu.path.nvlink");
pub const PATH_XBUS: Metric = Metric::counter("gpu.path.xbus");
pub const PATH_HOST_STAGED: Metric = Metric::counter("gpu.path.host_staged");

/// The path-choice counter for a peer-to-peer path; `None` for paths that
/// are not a device-to-device link decision (on-device, host legs — the
/// staged rung is counted by its caller via [`PATH_HOST_STAGED`]).
pub const fn transfer_path(path: CopyPath) -> Option<Metric> {
    match path {
        CopyPath::NvLink => Some(PATH_NVLINK),
        CopyPath::XBus => Some(PATH_XBUS),
        _ => None,
    }
}

/// Registration-model touches of a pool-backed pre-mapped allocation: the
/// mapping was paid once at pool-build time, so the comm path charges
/// nothing (bumped by the UCP layer's registration model).
pub const POOL_PREMAPPED_HIT: Metric = Metric::counter("gpu.pool.premapped_hit");
