//! Simulated memory: device memory, pinned and pageable host memory.
//!
//! Allocations are handle-based (no flat address space to fragment). Each
//! allocation may be **materialized** — backed by real bytes, so copies and
//! message transfers actually move data and integrity is testable end-to-end
//! — or **phantom** — size-only, for at-scale runs (a 4.8 GB Jacobi block
//! per simulated GPU cannot be backed by real memory for 1536 GPUs).

use std::collections::HashMap;

use crate::device::DeviceId;

/// Where an allocation lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemKind {
    /// Pageable host memory on `node`.
    Host { node: usize },
    /// Pinned (page-locked) host memory on `node`.
    HostPinned { node: usize },
    /// GPU device memory.
    Device(DeviceId),
}

impl MemKind {
    /// True for either kind of host memory.
    pub fn is_host(self) -> bool {
        matches!(self, MemKind::Host { .. } | MemKind::HostPinned { .. })
    }

    /// True for device memory.
    pub fn is_device(self) -> bool {
        matches!(self, MemKind::Device(_))
    }

    /// Node this memory is physically attached to (requires a topology
    /// lookup for device memory, so the caller provides it).
    pub fn host_node(self) -> Option<usize> {
        match self {
            MemKind::Host { node } | MemKind::HostPinned { node } => Some(node),
            MemKind::Device(_) => None,
        }
    }
}

/// Opaque allocation handle (unique across the simulated cluster, never
/// reused — a dangling `MemId` is always detected).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MemId(pub u64);

/// A byte range within an allocation: the simulation's "pointer".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemRef {
    pub id: MemId,
    pub offset: u64,
    pub len: u64,
}

impl MemRef {
    /// Sub-range of this reference. Panics if out of bounds.
    pub fn slice(self, offset: u64, len: u64) -> MemRef {
        assert!(
            offset.checked_add(len).is_some_and(|end| end <= self.len),
            "slice [{offset}, +{len}) out of range of MemRef of len {}",
            self.len
        );
        MemRef {
            id: self.id,
            offset: self.offset + offset,
            len,
        }
    }
}

struct Allocation {
    kind: MemKind,
    size: u64,
    data: Option<Vec<u8>>,
    /// Pre-registered with the NIC/driver at allocation time (pool-backed
    /// allocations that were mapped once, up front). The UCP registration
    /// model treats touches of premapped buffers as cache hits.
    premapped: bool,
}

/// Errors from the memory pool.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemError {
    /// Device out of memory: requested vs remaining bytes.
    DeviceOom { requested: u64, free: u64 },
    /// The handle was never allocated or has been freed.
    BadHandle(MemId),
    /// Access outside the allocation bounds.
    OutOfBounds {
        id: MemId,
        offset: u64,
        len: u64,
        size: u64,
    },
}

impl std::fmt::Display for MemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MemError::DeviceOom { requested, free } => {
                write!(f, "device OOM: requested {requested} bytes, {free} free")
            }
            MemError::BadHandle(id) => write!(f, "bad or freed memory handle {id:?}"),
            MemError::OutOfBounds {
                id,
                offset,
                len,
                size,
            } => write!(
                f,
                "access [{offset}, +{len}) out of bounds of {id:?} (size {size})"
            ),
        }
    }
}

impl std::error::Error for MemError {}

/// Cluster-wide memory registry.
pub struct MemPool {
    allocs: HashMap<u64, Allocation>,
    next_id: u64,
    device_capacity: Vec<u64>,
    device_used: Vec<u64>,
    host_used: Vec<u64>,
    /// Live premapped allocations (leak gate: must be 0 at shutdown once
    /// every pool-backed allocation has been returned).
    premapped_live: usize,
}

impl MemPool {
    /// Create a pool for `devices` GPUs (each with `device_capacity` bytes)
    /// and `nodes` host memories (unbounded; accounting only).
    pub fn new(devices: usize, device_capacity: u64, nodes: usize) -> Self {
        MemPool {
            allocs: HashMap::new(),
            next_id: 1,
            device_capacity: vec![device_capacity; devices],
            device_used: vec![0; devices],
            host_used: vec![0; nodes],
            premapped_live: 0,
        }
    }

    fn insert(&mut self, kind: MemKind, size: u64, materialize: bool) -> MemRef {
        let id = self.next_id;
        self.next_id += 1;
        let data = materialize.then(|| vec![0u8; size as usize]);
        self.allocs.insert(
            id,
            Allocation {
                kind,
                size,
                data,
                premapped: false,
            },
        );
        MemRef {
            id: MemId(id),
            offset: 0,
            len: size,
        }
    }

    /// Mark an allocation as pre-registered (mapped once at pool-creation
    /// time). The UCP layer then never charges registration latency for it.
    pub fn set_premapped(&mut self, id: MemId) -> Result<(), MemError> {
        let a = self.allocs.get_mut(&id.0).ok_or(MemError::BadHandle(id))?;
        if !a.premapped {
            a.premapped = true;
            self.premapped_live += 1;
        }
        Ok(())
    }

    /// Whether the allocation was pre-registered at allocation time.
    pub fn is_premapped(&self, id: MemId) -> Result<bool, MemError> {
        self.allocs
            .get(&id.0)
            .map(|a| a.premapped)
            .ok_or(MemError::BadHandle(id))
    }

    /// Live premapped allocations (0 at shutdown = no pool leak).
    pub fn premapped_live(&self) -> usize {
        self.premapped_live
    }

    /// Allocate device memory. `materialize` backs it with real bytes.
    pub fn alloc_device(
        &mut self,
        device: DeviceId,
        size: u64,
        materialize: bool,
    ) -> Result<MemRef, MemError> {
        let d = device.index();
        let free = self.device_capacity[d] - self.device_used[d];
        if size > free {
            return Err(MemError::DeviceOom {
                requested: size,
                free,
            });
        }
        self.device_used[d] += size;
        Ok(self.insert(MemKind::Device(device), size, materialize))
    }

    /// Allocate host memory on `node`; `pinned` selects page-locked memory.
    pub fn alloc_host(
        &mut self,
        node: usize,
        size: u64,
        pinned: bool,
        materialize: bool,
    ) -> MemRef {
        self.host_used[node] += size;
        let kind = if pinned {
            MemKind::HostPinned { node }
        } else {
            MemKind::Host { node }
        };
        self.insert(kind, size, materialize)
    }

    /// Free an allocation. Double-free and unknown handles are errors.
    pub fn free(&mut self, id: MemId) -> Result<(), MemError> {
        let a = self.allocs.remove(&id.0).ok_or(MemError::BadHandle(id))?;
        match a.kind {
            MemKind::Device(d) => self.device_used[d.index()] -= a.size,
            MemKind::Host { node } | MemKind::HostPinned { node } => self.host_used[node] -= a.size,
        }
        if a.premapped {
            self.premapped_live -= 1;
        }
        Ok(())
    }

    /// Memory kind of a live allocation.
    pub fn kind(&self, id: MemId) -> Result<MemKind, MemError> {
        self.allocs
            .get(&id.0)
            .map(|a| a.kind)
            .ok_or(MemError::BadHandle(id))
    }

    /// Total size of a live allocation.
    pub fn size(&self, id: MemId) -> Result<u64, MemError> {
        self.allocs
            .get(&id.0)
            .map(|a| a.size)
            .ok_or(MemError::BadHandle(id))
    }

    /// Whether the allocation is backed by real bytes.
    pub fn is_materialized(&self, id: MemId) -> Result<bool, MemError> {
        self.allocs
            .get(&id.0)
            .map(|a| a.data.is_some())
            .ok_or(MemError::BadHandle(id))
    }

    fn check(&self, r: MemRef) -> Result<&Allocation, MemError> {
        let a = self.allocs.get(&r.id.0).ok_or(MemError::BadHandle(r.id))?;
        if r.offset.checked_add(r.len).is_none_or(|end| end > a.size) {
            return Err(MemError::OutOfBounds {
                id: r.id,
                offset: r.offset,
                len: r.len,
                size: a.size,
            });
        }
        Ok(a)
    }

    /// Write bytes into a materialized allocation (no-op for phantom ones).
    pub fn write(&mut self, r: MemRef, bytes: &[u8]) -> Result<(), MemError> {
        assert_eq!(bytes.len() as u64, r.len, "write length mismatch");
        self.check(r)?;
        let a = self.allocs.get_mut(&r.id.0).unwrap();
        if let Some(data) = &mut a.data {
            data[r.offset as usize..(r.offset + r.len) as usize].copy_from_slice(bytes);
        }
        Ok(())
    }

    /// Read bytes from a materialized allocation (zeros for phantom ones).
    pub fn read(&self, r: MemRef) -> Result<Vec<u8>, MemError> {
        let a = self.check(r)?;
        Ok(match &a.data {
            Some(data) => data[r.offset as usize..(r.offset + r.len) as usize].to_vec(),
            None => vec![0u8; r.len as usize],
        })
    }

    /// Copy `src` to `dst` (equal lengths). Moves real bytes when both sides
    /// are materialized; if only the destination is materialized it is
    /// zero-filled (phantom reads as zeros), and phantom destinations ignore
    /// the data entirely.
    pub fn copy(&mut self, src: MemRef, dst: MemRef) -> Result<(), MemError> {
        assert_eq!(src.len, dst.len, "copy length mismatch");
        self.check(src)?;
        self.check(dst)?;
        if src.id == dst.id {
            let a = self.allocs.get_mut(&src.id.0).unwrap();
            if let Some(data) = &mut a.data {
                data.copy_within(
                    src.offset as usize..(src.offset + src.len) as usize,
                    dst.offset as usize,
                );
            }
            return Ok(());
        }
        let src_bytes = {
            let a = self.allocs.get(&src.id.0).unwrap();
            a.data
                .as_ref()
                .map(|d| d[src.offset as usize..(src.offset + src.len) as usize].to_vec())
        };
        let dst_alloc = self.allocs.get_mut(&dst.id.0).unwrap();
        if let Some(data) = &mut dst_alloc.data {
            match src_bytes {
                Some(sb) => {
                    data[dst.offset as usize..(dst.offset + dst.len) as usize].copy_from_slice(&sb)
                }
                None => data[dst.offset as usize..(dst.offset + dst.len) as usize].fill(0),
            }
        }
        Ok(())
    }

    /// Bytes currently allocated on a device.
    pub fn device_used(&self, d: DeviceId) -> u64 {
        self.device_used[d.index()]
    }

    /// Bytes currently allocated on a node's host memory.
    pub fn host_used(&self, node: usize) -> u64 {
        self.host_used[node]
    }

    /// Number of live allocations.
    pub fn live_allocations(&self) -> usize {
        self.allocs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> MemPool {
        MemPool::new(2, 1 << 30, 1)
    }

    #[test]
    fn device_alloc_accounting_and_oom() {
        let mut p = pool();
        let d = DeviceId(0);
        let a = p.alloc_device(d, 1 << 29, false).unwrap();
        assert_eq!(p.device_used(d), 1 << 29);
        let err = p.alloc_device(d, (1 << 29) + 1, false).unwrap_err();
        assert!(matches!(err, MemError::DeviceOom { .. }));
        p.free(a.id).unwrap();
        assert_eq!(p.device_used(d), 0);
        // Other device unaffected.
        assert_eq!(p.device_used(DeviceId(1)), 0);
    }

    #[test]
    fn double_free_is_error() {
        let mut p = pool();
        let a = p.alloc_host(0, 64, true, true);
        p.free(a.id).unwrap();
        assert_eq!(p.free(a.id), Err(MemError::BadHandle(a.id)));
        assert_eq!(p.kind(a.id), Err(MemError::BadHandle(a.id)));
    }

    #[test]
    fn materialized_write_read_roundtrip() {
        let mut p = pool();
        let a = p.alloc_device(DeviceId(0), 16, true).unwrap();
        p.write(a, &[7u8; 16]).unwrap();
        assert_eq!(p.read(a).unwrap(), vec![7u8; 16]);
        let s = a.slice(4, 8);
        p.write(s, &[9u8; 8]).unwrap();
        let back = p.read(a).unwrap();
        assert_eq!(&back[..4], &[7u8; 4]);
        assert_eq!(&back[4..12], &[9u8; 8]);
        assert_eq!(&back[12..], &[7u8; 4]);
    }

    #[test]
    fn phantom_reads_zero_and_ignores_writes() {
        let mut p = pool();
        let a = p.alloc_host(0, 8, false, false);
        p.write(a, &[1u8; 8]).unwrap();
        assert_eq!(p.read(a).unwrap(), vec![0u8; 8]);
        assert!(!p.is_materialized(a.id).unwrap());
    }

    #[test]
    fn copy_between_allocations() {
        let mut p = pool();
        let a = p.alloc_device(DeviceId(0), 32, true).unwrap();
        let b = p.alloc_device(DeviceId(1), 32, true).unwrap();
        p.write(a, &(0..32).collect::<Vec<u8>>()).unwrap();
        p.copy(a, b).unwrap();
        assert_eq!(p.read(b).unwrap(), (0..32).collect::<Vec<u8>>());
    }

    #[test]
    fn copy_phantom_source_zero_fills_materialized_dst() {
        let mut p = pool();
        let a = p.alloc_host(0, 8, true, false);
        let b = p.alloc_host(0, 8, true, true);
        p.write(b, &[0xAA; 8]).unwrap();
        p.copy(a, b).unwrap();
        assert_eq!(p.read(b).unwrap(), vec![0u8; 8]);
    }

    #[test]
    fn copy_within_same_allocation() {
        let mut p = pool();
        let a = p.alloc_host(0, 16, true, true);
        p.write(a, &(0..16).collect::<Vec<u8>>()).unwrap();
        p.copy(a.slice(0, 8), a.slice(8, 8)).unwrap();
        let back = p.read(a).unwrap();
        assert_eq!(&back[8..], &(0..8).collect::<Vec<u8>>()[..]);
    }

    #[test]
    fn out_of_bounds_detected() {
        let mut p = pool();
        let a = p.alloc_host(0, 8, true, true);
        let bad = MemRef {
            id: a.id,
            offset: 4,
            len: 8,
        };
        assert!(matches!(p.read(bad), Err(MemError::OutOfBounds { .. })));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn slice_past_end_panics() {
        let r = MemRef {
            id: MemId(1),
            offset: 0,
            len: 8,
        };
        let _ = r.slice(4, 8);
    }

    #[test]
    fn premapped_accounting() {
        let mut p = pool();
        let a = p.alloc_host(0, 64, true, false);
        assert!(!p.is_premapped(a.id).unwrap());
        p.set_premapped(a.id).unwrap();
        p.set_premapped(a.id).unwrap(); // idempotent
        assert!(p.is_premapped(a.id).unwrap());
        assert_eq!(p.premapped_live(), 1);
        p.free(a.id).unwrap();
        assert_eq!(p.premapped_live(), 0);
        assert!(p.is_premapped(a.id).is_err());
    }

    #[test]
    fn kind_queries() {
        let mut p = pool();
        let d = p.alloc_device(DeviceId(1), 8, false).unwrap();
        let h = p.alloc_host(0, 8, false, false);
        let hp = p.alloc_host(0, 8, true, false);
        assert_eq!(p.kind(d.id).unwrap(), MemKind::Device(DeviceId(1)));
        assert!(p.kind(d.id).unwrap().is_device());
        assert!(p.kind(h.id).unwrap().is_host());
        assert_eq!(p.kind(hp.id).unwrap(), MemKind::HostPinned { node: 0 });
        assert_eq!(p.kind(h.id).unwrap().host_node(), Some(0));
        assert_eq!(p.kind(d.id).unwrap().host_node(), None);
    }
}
