//! Asynchronous GPU operations: copies, kernels, stream synchronization.
//!
//! These mirror the CUDA calls the paper's software stack uses
//! (`cudaMemcpyAsync`, kernel launches, `cudaStreamSynchronize`), with
//! explicit virtual-time costs. CPU-side launch overhead is modeled by the
//! *caller* advancing its process clock by [`GpuParams::copy_launch`] /
//! [`GpuParams::kernel_launch`] — the functions here model the device side
//! only (queueing, DMA, link occupancy).

use rucx_sim::sched::{Scheduler, Trigger};
use rucx_sim::time::Time;

use crate::device::{CopyPath, KernelCost};
use crate::mem::{MemKind, MemRef};
use crate::subsystem::{GpuSubsystem, HasGpu, StreamId};

/// Resolve the intra-node path for a copy between two memory kinds.
///
/// Panics if the endpoints are on different nodes: cross-node movement is
/// the network's job (the UCX layer decomposes such transfers).
pub fn resolve_path(gpu: &GpuSubsystem, src: MemKind, dst: MemKind) -> CopyPath {
    let node_of = |k: MemKind| match k {
        MemKind::Host { node } | MemKind::HostPinned { node } => node,
        MemKind::Device(d) => gpu.device(d).node,
    };
    assert_eq!(
        node_of(src),
        node_of(dst),
        "copy endpoints must be on the same node (got {src:?} -> {dst:?})"
    );
    match (src, dst) {
        (MemKind::Device(a), MemKind::Device(b)) => {
            if a == b {
                CopyPath::OnDevice
            } else if gpu.device(a).socket == gpu.device(b).socket {
                CopyPath::NvLink
            } else {
                CopyPath::XBus
            }
        }
        (MemKind::Device(_), h) | (h, MemKind::Device(_)) => {
            if matches!(h, MemKind::HostPinned { .. }) {
                CopyPath::HostPinnedLink
            } else {
                CopyPath::HostPageableLink
            }
        }
        _ => CopyPath::HostMem,
    }
}

/// Enqueue an asynchronous copy on `stream`; returns the completion time.
///
/// The copy starts when the stream reaches it *and* the involved link ports
/// are free (device egress/ingress, plus the node's X-Bus for cross-socket
/// paths); data becomes visible in the destination at completion, when
/// `done` (if any) fires.
pub fn copy_async<W: HasGpu>(
    w: &mut W,
    s: &mut Scheduler<W>,
    src: MemRef,
    dst: MemRef,
    stream: StreamId,
    done: Option<Trigger>,
) -> Time {
    assert_eq!(src.len, dst.len, "copy length mismatch");
    let now = s.now();
    let gpu = w.gpu();
    let src_kind = gpu.pool.kind(src.id).expect("copy from bad handle");
    let dst_kind = gpu.pool.kind(dst.id).expect("copy to bad handle");
    let path = resolve_path(gpu, src_kind, dst_kind);
    let dur = gpu.params.wire_time(path, src.len);

    // Gather contention constraints.
    let mut start = now.max(gpu.stream_busy(stream));
    let mut ports: Vec<PortRef> = Vec::with_capacity(3);
    if let MemKind::Device(d) = src_kind {
        start = start.max(gpu.egress_busy(d));
        ports.push(PortRef::Egress(d));
    }
    if let MemKind::Device(d) = dst_kind {
        start = start.max(gpu.ingress_busy(d));
        ports.push(PortRef::Ingress(d));
    }
    if path == CopyPath::XBus {
        let node = match src_kind {
            MemKind::Device(d) => gpu.device(d).node,
            _ => unreachable!("XBus path implies device endpoints"),
        };
        start = start.max(gpu.xbus_busy(node));
        ports.push(PortRef::XBus(node));
    }
    let end = start + dur;
    gpu.set_stream_busy(stream, end);
    for p in &ports {
        // The X-Bus is a shared aggregate resource: each flow occupies it
        // for size/aggregate_bw even though the flow itself runs at the
        // (lower) per-flow rate.
        let busy_until = if matches!(p, PortRef::XBus(_)) {
            start + rucx_sim::time::transfer_time(src.len, gpu.params.xbus_aggregate_gbps)
        } else {
            end
        };
        gpu.set_port_busy(*p, busy_until);
    }
    gpu.counters.bump(crate::metrics::copy_path(path));

    s.schedule_at(end, move |w, s| {
        w.gpu()
            .pool
            .copy(src, dst)
            .expect("copy completed on freed memory");
        if let Some(t) = done {
            s.fire(t);
        }
    });
    end
}

/// Link-port identifiers used for contention accounting.
#[derive(Debug, Clone, Copy)]
pub enum PortRef {
    Egress(crate::device::DeviceId),
    Ingress(crate::device::DeviceId),
    XBus(usize),
}

/// Enqueue a kernel on `stream`; returns its completion time.
pub fn kernel_async<W: HasGpu>(
    w: &mut W,
    s: &mut Scheduler<W>,
    stream: StreamId,
    cost: KernelCost,
    done: Option<Trigger>,
) -> Time {
    let now = s.now();
    let gpu = w.gpu();
    let start = now.max(gpu.stream_busy(stream));
    let end = start + cost.duration(&gpu.params);
    gpu.set_stream_busy(stream, end);
    gpu.counters.bump(crate::metrics::KERNEL);
    if let Some(t) = done {
        s.schedule_at(end, move |_, s| s.fire(t));
    }
    end
}

/// Occupy the resources of a peer-to-peer device transfer (src egress, dst
/// ingress, X-Bus if cross-socket, and the driving stream) for a transfer of
/// precomputed duration `dur`; returns the completion time. Used by the
/// communication layer for DMA it drives itself (CUDA-IPC reads), where the
/// data movement is accounted separately.
pub fn occupy_transfer<W: HasGpu>(
    w: &mut W,
    s: &mut Scheduler<W>,
    src_dev: crate::device::DeviceId,
    dst_dev: crate::device::DeviceId,
    stream: StreamId,
    dur: rucx_sim::time::Duration,
    size: u64,
) -> Time {
    let now = s.now();
    let gpu = w.gpu();
    let cross = gpu.device(src_dev).socket != gpu.device(dst_dev).socket;
    let node = gpu.device(src_dev).node;
    if src_dev != dst_dev {
        let path = if cross {
            CopyPath::XBus
        } else {
            CopyPath::NvLink
        };
        if let Some(m) = crate::metrics::transfer_path(path) {
            gpu.counters.bump(m);
        }
    }
    let mut start = now
        .max(gpu.stream_busy(stream))
        .max(gpu.egress_busy(src_dev))
        .max(gpu.ingress_busy(dst_dev));
    if cross {
        start = start.max(gpu.xbus_busy(node));
    }
    let end = start + dur;
    gpu.set_stream_busy(stream, end);
    gpu.set_port_busy(PortRef::Egress(src_dev), end);
    gpu.set_port_busy(PortRef::Ingress(dst_dev), end);
    if cross {
        // Shared aggregate resource (see `copy_async`).
        let occ = start + rucx_sim::time::transfer_time(size, gpu.params.xbus_aggregate_gbps);
        gpu.set_port_busy(PortRef::XBus(node), occ);
    }
    end
}

/// One leg of a striped multi-path device-to-device transfer: the path it
/// rides and the bytes assigned to it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StripedLeg {
    pub path: CopyPath,
    pub bytes: u64,
}

/// Occupy the resources of a *striped* peer-to-peer transfer: the legs run
/// concurrently over distinct links (NVLink + X-Bus, or X-Bus + a pinned
/// host bounce), each carrying its share of the bytes. Unlike
/// [`occupy_transfer`], the legs do not serialize against each other — the
/// whole point of striping is driving both links at once with separate copy
/// engines — but the transfer as a whole still waits for the driving
/// stream, the source egress and destination ingress ports, and each leg's
/// own shared-link state.
///
/// Returns `(leg_starts, end)`: per-leg start times (after `setup`, in the
/// order given) and the overall completion time. Stream and both device
/// ports are held until `end`; an X-Bus leg additionally occupies the
/// node's aggregate X-Bus for its share.
pub fn occupy_striped<W: HasGpu>(
    w: &mut W,
    s: &mut Scheduler<W>,
    src_dev: crate::device::DeviceId,
    dst_dev: crate::device::DeviceId,
    stream: StreamId,
    setup: rucx_sim::time::Duration,
    legs: &[StripedLeg],
) -> (Vec<Time>, Time) {
    let now = s.now();
    let gpu = w.gpu();
    let node = gpu.device(src_dev).node;
    let base = now
        .max(gpu.stream_busy(stream))
        .max(gpu.egress_busy(src_dev))
        .max(gpu.ingress_busy(dst_dev))
        + setup;
    let mut starts = Vec::with_capacity(legs.len());
    let mut end = base;
    for leg in legs {
        let start = if leg.path == CopyPath::XBus {
            base.max(gpu.xbus_busy(node))
        } else {
            base
        };
        let dur = match leg.path {
            // Degraded secondary leg: a pinned-host bounce pays the
            // CPU-GPU link twice (D2H then H2D).
            CopyPath::HostPinnedLink => 2 * gpu.params.wire_time(leg.path, leg.bytes),
            _ => gpu.params.wire_time(leg.path, leg.bytes),
        };
        let leg_end = start + dur;
        if leg.path == CopyPath::XBus {
            let occ =
                start + rucx_sim::time::transfer_time(leg.bytes, gpu.params.xbus_aggregate_gbps);
            gpu.set_port_busy(PortRef::XBus(node), occ);
        }
        if let Some(m) = crate::metrics::transfer_path(leg.path) {
            gpu.counters.bump(m);
        }
        starts.push(start);
        end = end.max(leg_end);
    }
    gpu.set_stream_busy(stream, end);
    gpu.set_port_busy(PortRef::Egress(src_dev), end);
    gpu.set_port_busy(PortRef::Ingress(dst_dev), end);
    (starts, end)
}

/// Occupy a device's egress port and a stream for `dur` (device-to-host
/// staging leg driven by the communication layer). Returns completion time.
pub fn occupy_egress<W: HasGpu>(
    w: &mut W,
    s: &mut Scheduler<W>,
    dev: crate::device::DeviceId,
    stream: StreamId,
    dur: rucx_sim::time::Duration,
) -> Time {
    let now = s.now();
    let gpu = w.gpu();
    let start = now.max(gpu.stream_busy(stream)).max(gpu.egress_busy(dev));
    let end = start + dur;
    gpu.set_stream_busy(stream, end);
    gpu.set_port_busy(PortRef::Egress(dev), end);
    end
}

/// Occupy a device's ingress port and a stream for `dur` (host-to-device
/// staging leg driven by the communication layer). Returns completion time.
pub fn occupy_ingress<W: HasGpu>(
    w: &mut W,
    s: &mut Scheduler<W>,
    dev: crate::device::DeviceId,
    stream: StreamId,
    dur: rucx_sim::time::Duration,
) -> Time {
    let now = s.now();
    let gpu = w.gpu();
    let start = now.max(gpu.stream_busy(stream)).max(gpu.ingress_busy(dev));
    let end = start + dur;
    gpu.set_stream_busy(stream, end);
    gpu.set_port_busy(PortRef::Ingress(dev), end);
    end
}

/// Create a trigger that fires when every operation already enqueued on
/// `stream` has completed (CUDA `cudaStreamSynchronize` semantics: later
/// enqueues are not waited for).
pub fn stream_sync_trigger<W: HasGpu>(
    w: &mut W,
    s: &mut Scheduler<W>,
    stream: StreamId,
) -> Trigger {
    let t = s.new_trigger();
    let busy = w.gpu().stream_busy(stream);
    if busy <= s.now() {
        s.fire(t);
    } else {
        s.schedule_at(busy, move |_, s| s.fire(t));
    }
    t
}
