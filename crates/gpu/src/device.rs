//! Simulated GPU devices and the intra-node cost model.
//!
//! The parameters default to a Summit-like node: 2 CPU sockets, 3 NVIDIA
//! V100-class GPUs per socket, GPUs and their socket's CPU fully connected
//! by NVLink (50 GB/s theoretical per direction), sockets bridged by the
//! X-Bus (64 GB/s). Effective bandwidths are derated to what microbenchmarks
//! achieve on the real machine (the paper reports Charm++ reaching
//! 44.7 GB/s intra-node).

use rucx_sim::time::{transfer_time, us, Duration};

/// Identifier of a GPU device, global across the simulated cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DeviceId(pub u32);

impl DeviceId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Static description of one simulated GPU.
#[derive(Debug, Clone)]
pub struct Device {
    pub id: DeviceId,
    /// Node this GPU belongs to.
    pub node: usize,
    /// CPU socket within the node this GPU hangs off.
    pub socket: usize,
    /// Device memory capacity in bytes.
    pub mem_capacity: u64,
}

/// Calibration constants for the intra-node GPU cost model.
///
/// All bandwidths are in GB/s (bytes per nanosecond); all latencies are
/// virtual-time durations. Defaults are calibrated against published V100 /
/// Summit microbenchmark behaviour; see EXPERIMENTS.md for the mapping from
/// these constants to reproduced figures.
#[derive(Debug, Clone)]
pub struct GpuParams {
    /// CPU-side cost to launch an async copy (driver + runtime).
    pub copy_launch: Duration,
    /// CPU-side cost of a stream synchronization call (beyond waiting).
    pub sync_overhead: Duration,
    /// CPU-side cost to launch a kernel.
    pub kernel_launch: Duration,
    /// DMA engine setup time per copy (added to the transfer itself).
    pub dma_setup: Duration,
    /// GPU<->GPU same-socket NVLink effective bandwidth.
    pub nvlink_gbps: f64,
    /// GPU<->GPU cross-socket (X-Bus) effective per-flow bandwidth.
    pub xbus_gbps: f64,
    /// Aggregate X-Bus bandwidth shared by all concurrent cross-socket
    /// flows of a node (the bus itself is faster than any single staged
    /// flow).
    pub xbus_aggregate_gbps: f64,
    /// CPU<->GPU NVLink effective bandwidth (host staging path).
    pub cpu_gpu_gbps: f64,
    /// On-device (HBM2) copy bandwidth for D2D on the same device.
    pub hbm_gbps: f64,
    /// Host-to-host single-core memcpy bandwidth.
    pub host_memcpy_gbps: f64,
    /// Bandwidth derate factor when the host buffer is pageable (the driver
    /// must bounce through an internal pinned buffer).
    pub pageable_factor: f64,
    /// Extra fixed latency for copies involving pageable host memory.
    pub pageable_overhead: Duration,
    /// Cost of opening a CUDA IPC memory handle (first touch; callers are
    /// expected to cache handles, as the paper notes).
    pub ipc_open: Duration,
}

impl Default for GpuParams {
    fn default() -> Self {
        GpuParams {
            copy_launch: us(3.2),
            sync_overhead: us(2.4),
            kernel_launch: us(7.0),
            dma_setup: us(1.1),
            nvlink_gbps: 44.0,
            // Cross-socket P2P is staged GPU->NVLink->CPU->X-Bus->CPU->NVLink->GPU;
            // despite the X-Bus's 64 GB/s headline rate the effective
            // device-to-device bandwidth is far below same-socket NVLink.
            xbus_gbps: 28.0,
            xbus_aggregate_gbps: 52.0,
            cpu_gpu_gbps: 42.0,
            hbm_gbps: 780.0,
            host_memcpy_gbps: 9.5,
            pageable_factor: 0.17,
            pageable_overhead: us(4.0),
            ipc_open: us(95.0),
        }
    }
}

/// The physical route a copy takes inside one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CopyPath {
    /// Device-to-device on the same GPU (HBM).
    OnDevice,
    /// Device-to-device between GPUs on the same socket (NVLink).
    NvLink,
    /// Device-to-device between GPUs on different sockets (X-Bus).
    XBus,
    /// Host-to-device or device-to-host over CPU-GPU NVLink, pinned host.
    HostPinnedLink,
    /// Host-to-device or device-to-host with pageable host memory.
    HostPageableLink,
    /// Host-to-host memcpy.
    HostMem,
}

impl GpuParams {
    /// Effective bandwidth of a path in GB/s.
    pub fn path_gbps(&self, path: CopyPath) -> f64 {
        match path {
            CopyPath::OnDevice => self.hbm_gbps,
            CopyPath::NvLink => self.nvlink_gbps,
            CopyPath::XBus => self.xbus_gbps,
            CopyPath::HostPinnedLink => self.cpu_gpu_gbps,
            CopyPath::HostPageableLink => self.cpu_gpu_gbps * self.pageable_factor,
            CopyPath::HostMem => self.host_memcpy_gbps,
        }
    }

    /// Pure wire time for `size` bytes along `path` (no launch overheads).
    pub fn wire_time(&self, path: CopyPath, size: u64) -> Duration {
        let extra = match path {
            CopyPath::HostPageableLink => self.pageable_overhead,
            _ => 0,
        };
        self.dma_setup + extra + transfer_time(size, self.path_gbps(path))
    }
}

/// Cost model of a GPU kernel: `fixed + bytes/hbm_bw` (memory-bound roofline,
/// which stencil kernels are).
#[derive(Debug, Clone, Copy)]
pub struct KernelCost {
    /// Fixed on-GPU time independent of data volume.
    pub fixed: Duration,
    /// Bytes of HBM traffic the kernel generates (reads + writes).
    pub bytes: u64,
}

impl KernelCost {
    /// On-GPU execution time under `params`.
    pub fn duration(&self, params: &GpuParams) -> Duration {
        self.fixed + transfer_time(self.bytes, params.hbm_gbps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_bandwidth_ordering_matches_hardware() {
        let p = GpuParams::default();
        // HBM > NVLink >= CPU-GPU > X-Bus (staged) > host memcpy.
        assert!(p.path_gbps(CopyPath::OnDevice) > p.path_gbps(CopyPath::NvLink));
        assert!(p.path_gbps(CopyPath::NvLink) > p.path_gbps(CopyPath::XBus));
        assert!(p.path_gbps(CopyPath::NvLink) >= p.path_gbps(CopyPath::HostPinnedLink));
        assert!(p.path_gbps(CopyPath::XBus) > p.path_gbps(CopyPath::HostMem));
        assert!(p.path_gbps(CopyPath::HostPinnedLink) > p.path_gbps(CopyPath::HostMem));
        assert!(p.path_gbps(CopyPath::HostPageableLink) < p.path_gbps(CopyPath::HostPinnedLink));
    }

    #[test]
    fn wire_time_scales_linearly() {
        let p = GpuParams::default();
        let t1 = p.wire_time(CopyPath::NvLink, 1 << 20);
        let t4 = p.wire_time(CopyPath::NvLink, 4 << 20);
        // Subtract the fixed dma_setup to check the slope.
        let s1 = t1 - p.dma_setup;
        let s4 = t4 - p.dma_setup;
        assert!((s4 as f64 / s1 as f64 - 4.0).abs() < 0.01);
    }

    #[test]
    fn pageable_copies_slower_than_pinned() {
        let p = GpuParams::default();
        let size = 1 << 20;
        assert!(
            p.wire_time(CopyPath::HostPageableLink, size)
                > p.wire_time(CopyPath::HostPinnedLink, size)
        );
    }

    #[test]
    fn kernel_cost_memory_bound() {
        let p = GpuParams::default();
        let k = KernelCost {
            fixed: us(2.0),
            bytes: 780_000_000, // exactly 1 ms of HBM traffic at 780 GB/s
        };
        let d = k.duration(&p);
        assert!((d as i64 - (us(2.0) + 1_000_000) as i64).abs() < 1_000);
    }
}
