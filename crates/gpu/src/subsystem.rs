//! The GPU subsystem: devices, streams, link-port occupancy, memory pool.

use rucx_sim::stats::Counters;
use rucx_sim::time::Time;

use crate::device::{Device, DeviceId, GpuParams};
use crate::mem::MemPool;
use crate::ops::PortRef;

/// Identifier of a stream (FIFO work queue) on some device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StreamId(pub u32);

struct StreamState {
    device: DeviceId,
    busy_until: Time,
}

/// World component: all simulated-GPU state for the cluster.
pub struct GpuSubsystem {
    pub params: GpuParams,
    pub pool: MemPool,
    pub counters: Counters,
    devices: Vec<Device>,
    gpus_per_node: usize,
    streams: Vec<StreamState>,
    egress_busy: Vec<Time>,
    ingress_busy: Vec<Time>,
    xbus_busy: Vec<Time>,
}

impl GpuSubsystem {
    /// Build a cluster of `nodes`, each with `gpus_per_node` devices split
    /// evenly into sockets of `gpus_per_socket` (Summit: 6 and 3).
    ///
    /// Each device gets a *default stream* whose `StreamId` equals the
    /// device id; extra streams come from [`GpuSubsystem::create_stream`].
    pub fn new(
        nodes: usize,
        gpus_per_node: usize,
        gpus_per_socket: usize,
        device_capacity: u64,
        params: GpuParams,
    ) -> Self {
        assert!(gpus_per_socket > 0 && gpus_per_node.is_multiple_of(gpus_per_socket));
        let total = nodes * gpus_per_node;
        let mut devices = Vec::with_capacity(total);
        let mut streams = Vec::with_capacity(total);
        for node in 0..nodes {
            for i in 0..gpus_per_node {
                let id = DeviceId((node * gpus_per_node + i) as u32);
                devices.push(Device {
                    id,
                    node,
                    socket: i / gpus_per_socket,
                    mem_capacity: device_capacity,
                });
                streams.push(StreamState {
                    device: id,
                    busy_until: 0,
                });
            }
        }
        GpuSubsystem {
            params,
            pool: MemPool::new(total, device_capacity, nodes),
            counters: Counters::new(),
            devices,
            gpus_per_node,
            streams,
            egress_busy: vec![0; total],
            ingress_busy: vec![0; total],
            xbus_busy: vec![0; nodes],
        }
    }

    /// Static description of a device.
    pub fn device(&self, d: DeviceId) -> &Device {
        &self.devices[d.index()]
    }

    /// Number of devices in the cluster.
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// Devices per node this subsystem was built with.
    pub fn gpus_per_node(&self) -> usize {
        self.gpus_per_node
    }

    /// The default stream of a device (created at construction).
    pub fn default_stream(&self, d: DeviceId) -> StreamId {
        StreamId(d.0)
    }

    /// Create an additional stream on `d`.
    pub fn create_stream(&mut self, d: DeviceId) -> StreamId {
        let id = StreamId(self.streams.len() as u32);
        self.streams.push(StreamState {
            device: d,
            busy_until: 0,
        });
        id
    }

    /// Device that owns a stream.
    pub fn stream_device(&self, s: StreamId) -> DeviceId {
        self.streams[s.0 as usize].device
    }

    pub(crate) fn stream_busy(&self, s: StreamId) -> Time {
        self.streams[s.0 as usize].busy_until
    }

    pub(crate) fn set_stream_busy(&mut self, s: StreamId, t: Time) {
        self.streams[s.0 as usize].busy_until = t;
    }

    pub(crate) fn egress_busy(&self, d: DeviceId) -> Time {
        self.egress_busy[d.index()]
    }

    pub(crate) fn ingress_busy(&self, d: DeviceId) -> Time {
        self.ingress_busy[d.index()]
    }

    pub(crate) fn xbus_busy(&self, node: usize) -> Time {
        self.xbus_busy[node]
    }

    pub(crate) fn set_port_busy(&mut self, p: PortRef, t: Time) {
        match p {
            PortRef::Egress(d) => self.egress_busy[d.index()] = t,
            PortRef::Ingress(d) => self.ingress_busy[d.index()] = t,
            PortRef::XBus(n) => self.xbus_busy[n] = t,
        }
    }
}

/// World types that contain a GPU subsystem. Model code is generic over this
/// so that the concrete world can be assembled at a higher layer.
pub trait HasGpu: Sized + 'static {
    fn gpu(&mut self) -> &mut GpuSubsystem;
    fn gpu_ref(&self) -> &GpuSubsystem;
}

impl HasGpu for GpuSubsystem {
    fn gpu(&mut self) -> &mut GpuSubsystem {
        self
    }
    fn gpu_ref(&self) -> &GpuSubsystem {
        self
    }
}
