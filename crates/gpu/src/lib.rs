//! # rucx-gpu — simulated CUDA-like GPU substrate
//!
//! The paper's software stack sits on CUDA: device memory, async copies,
//! streams, kernels, and CUDA IPC. This crate provides those primitives over
//! the [`rucx_sim`] discrete-event engine, with a calibrated intra-node cost
//! model (NVLink / X-Bus / CPU-GPU links, HBM, host memcpy) and byte-accurate
//! backing memory so that data integrity is testable end-to-end.
//!
//! Key pieces:
//! - [`mem::MemPool`] — handle-based device/host memory with *materialized*
//!   (real bytes) or *phantom* (size-only, for at-scale runs) allocations.
//! - [`subsystem::GpuSubsystem`] — devices, streams, link-port occupancy.
//! - [`ops`] — `copy_async` / `kernel_async` / `stream_sync_trigger`, the
//!   simulation equivalents of `cudaMemcpyAsync`, kernel launch, and
//!   `cudaStreamSynchronize`.

pub mod device;
pub mod mem;
pub mod metrics;
pub mod ops;
pub mod subsystem;

pub use device::{CopyPath, Device, DeviceId, GpuParams, KernelCost};
pub use mem::{MemError, MemId, MemKind, MemPool, MemRef};
pub use ops::{copy_async, kernel_async, resolve_path, stream_sync_trigger};
pub use subsystem::{GpuSubsystem, HasGpu, StreamId};

#[cfg(test)]
mod tests {
    use super::*;
    use rucx_sim::time::us;
    use rucx_sim::{RunOutcome, Simulation};

    fn summit_node() -> GpuSubsystem {
        GpuSubsystem::new(1, 6, 3, 16 << 30, GpuParams::default())
    }

    #[test]
    fn topology_layout() {
        let g = GpuSubsystem::new(2, 6, 3, 16 << 30, GpuParams::default());
        assert_eq!(g.device_count(), 12);
        assert_eq!(g.device(DeviceId(0)).socket, 0);
        assert_eq!(g.device(DeviceId(2)).socket, 0);
        assert_eq!(g.device(DeviceId(3)).socket, 1);
        assert_eq!(g.device(DeviceId(5)).socket, 1);
        assert_eq!(g.device(DeviceId(6)).node, 1);
        assert_eq!(g.device(DeviceId(6)).socket, 0);
    }

    #[test]
    fn path_resolution() {
        let g = summit_node();
        let d0 = MemKind::Device(DeviceId(0));
        let d1 = MemKind::Device(DeviceId(1));
        let d4 = MemKind::Device(DeviceId(4));
        let h = MemKind::Host { node: 0 };
        let hp = MemKind::HostPinned { node: 0 };
        assert_eq!(resolve_path(&g, d0, d0), CopyPath::OnDevice);
        assert_eq!(resolve_path(&g, d0, d1), CopyPath::NvLink);
        assert_eq!(resolve_path(&g, d0, d4), CopyPath::XBus);
        assert_eq!(resolve_path(&g, d0, hp), CopyPath::HostPinnedLink);
        assert_eq!(resolve_path(&g, h, d0), CopyPath::HostPageableLink);
        assert_eq!(resolve_path(&g, h, hp), CopyPath::HostMem);
    }

    #[test]
    #[should_panic(expected = "same node")]
    fn cross_node_copy_rejected() {
        let g = GpuSubsystem::new(2, 6, 3, 16 << 30, GpuParams::default());
        resolve_path(
            &g,
            MemKind::Device(DeviceId(0)),
            MemKind::Device(DeviceId(6)),
        );
    }

    #[test]
    fn copy_moves_data_at_completion_time() {
        let mut sim = Simulation::new(summit_node());
        let (a, b) = {
            let g = sim.world_mut();
            let a = g.pool.alloc_device(DeviceId(0), 1024, true).unwrap();
            let b = g.pool.alloc_device(DeviceId(1), 1024, true).unwrap();
            g.pool.write(a, &[0x5A; 1024]).unwrap();
            (a, b)
        };
        let stream = sim.world_ref_stream();
        sim.spawn("host", 0, move |ctx| {
            let done = ctx.with_world(move |w, s| {
                let t = s.new_trigger();
                copy_async(w, s, a, b, stream, Some(t));
                t
            });
            // Data must not be visible before completion.
            let before = ctx.with_world_ref(|w, _| w.pool.read(b).unwrap());
            assert_eq!(before, vec![0u8; 1024]);
            ctx.wait(done);
            let after = ctx.with_world_ref(|w, _| w.pool.read(b).unwrap());
            assert_eq!(after, vec![0x5A; 1024]);
            // NVLink 1 KiB: dma_setup + ~23ns wire.
            assert!(
                ctx.now() >= us(1.1) && ctx.now() < us(2.0),
                "t={}",
                ctx.now()
            );
        });
        assert_eq!(sim.run(), RunOutcome::Completed);
        assert_eq!(sim.world().counters.get("gpu.copy.nvlink"), 1);
    }

    // Helper so the test above can grab a default stream without fighting
    // the borrow checker inside the world-call closure.
    trait StreamOfZero {
        fn world_ref_stream(&mut self) -> StreamId;
    }
    impl StreamOfZero for Simulation<GpuSubsystem> {
        fn world_ref_stream(&mut self) -> StreamId {
            self.world().default_stream(DeviceId(0))
        }
    }

    #[test]
    fn stream_serializes_operations() {
        let mut sim = Simulation::new(summit_node());
        let (a, b) = {
            let g = sim.world_mut();
            let a = g.pool.alloc_device(DeviceId(0), 1 << 20, false).unwrap();
            let b = g.pool.alloc_device(DeviceId(1), 1 << 20, false).unwrap();
            (a, b)
        };
        sim.spawn("host", 0, move |ctx| {
            let (end1, end2) = ctx.with_world(move |w, s| {
                let stream = w.default_stream(DeviceId(0));
                let e1 = copy_async(w, s, a, b, stream, None);
                let e2 = copy_async(w, s, a, b, stream, None);
                (e1, e2)
            });
            // Second copy starts only after the first finishes.
            assert!(end2 >= 2 * end1 - 1, "end1={end1} end2={end2}");
            let sync = ctx.with_world(move |w, s| stream_sync_trigger(w, s, StreamId(0)));
            ctx.wait(sync);
            assert_eq!(ctx.now(), end2);
        });
        assert_eq!(sim.run(), RunOutcome::Completed);
    }

    #[test]
    fn independent_streams_contend_on_ports() {
        // Two copies with the same source device but different streams must
        // serialize on the egress port.
        let mut sim = Simulation::new(summit_node());
        let (a, b, c, s2) = {
            let g = sim.world_mut();
            let a = g.pool.alloc_device(DeviceId(0), 1 << 20, false).unwrap();
            let b = g.pool.alloc_device(DeviceId(1), 1 << 20, false).unwrap();
            let c = g.pool.alloc_device(DeviceId(2), 1 << 20, false).unwrap();
            let s2 = g.create_stream(DeviceId(0));
            (a, b, c, s2)
        };
        sim.spawn("host", 0, move |ctx| {
            let (e1, e2) = ctx.with_world(move |w, s| {
                let s1 = w.default_stream(DeviceId(0));
                let e1 = copy_async(w, s, a, b, s1, None);
                let e2 = copy_async(w, s, a, c, s2, None);
                (e1, e2)
            });
            assert!(e2 > e1, "egress port must serialize: e1={e1} e2={e2}");
        });
        assert_eq!(sim.run(), RunOutcome::Completed);
    }

    #[test]
    fn kernel_time_and_sync() {
        let mut sim = Simulation::new(summit_node());
        sim.spawn("host", 0, |ctx| {
            let cost = KernelCost {
                fixed: us(2.0),
                bytes: 0,
            };
            let end = ctx.with_world(move |w, s| {
                let stream = w.default_stream(DeviceId(3));
                kernel_async(w, s, stream, cost, None)
            });
            assert_eq!(end, us(2.0));
            let sync = ctx.with_world(move |w, s| stream_sync_trigger(w, s, StreamId(3)));
            ctx.wait(sync);
            assert_eq!(ctx.now(), us(2.0));
        });
        assert_eq!(sim.run(), RunOutcome::Completed);
    }

    #[test]
    fn sync_on_idle_stream_fires_immediately() {
        let mut sim = Simulation::new(summit_node());
        sim.spawn("host", 0, |ctx| {
            let sync = ctx.with_world(|w, s| {
                let stream = w.default_stream(DeviceId(0));
                stream_sync_trigger(w, s, stream)
            });
            ctx.wait(sync);
            assert_eq!(ctx.now(), 0);
        });
        assert_eq!(sim.run(), RunOutcome::Completed);
    }

    #[test]
    fn xbus_copy_slower_than_nvlink() {
        let mut sim = Simulation::new(summit_node());
        let size = 4u64 << 20;
        let (a, b, c) = {
            let g = sim.world_mut();
            let a = g.pool.alloc_device(DeviceId(0), size, false).unwrap();
            let b = g.pool.alloc_device(DeviceId(1), size, false).unwrap();
            let c = g.pool.alloc_device(DeviceId(4), size, false).unwrap();
            (a, b, c)
        };
        sim.spawn("host", 0, move |ctx| {
            let (near, far) = ctx.with_world(move |w, s| {
                let s0 = w.default_stream(DeviceId(0));
                let s1 = w.create_stream(DeviceId(0));
                let near = copy_async(w, s, a, b, s0, None);
                // Use a different stream; egress port still serializes, so
                // compare durations, not absolute ends.
                let t0 = s.now();
                let far_end = copy_async(w, s, a, c, s1, None);
                (near - t0, far_end - near)
            });
            assert!(far > near, "XBus {far} must exceed NVLink {near}");
        });
        assert_eq!(sim.run(), RunOutcome::Completed);
    }
}
