//! # rucx — GPU-aware communication with a UCX-style framework, simulated
//!
//! A full-system reproduction of *"GPU-aware Communication with UCX in
//! Parallel Programming Models: Charm++, MPI, and Python"* (IPDPSW 2021) in
//! Rust. Every layer of the paper's stack is built from scratch over a
//! deterministic discrete-event simulation of a Summit-like GPU cluster:
//!
//! | layer | crate |
//! |---|---|
//! | Hermetic std-only substrate (sync, channels, PRNG, test/bench harness) | [`compat`] |
//! | Discrete-event engine (virtual time, simulated processes) | [`sim`] |
//! | CUDA-like GPU substrate (memory, streams, copies, kernels) | [`gpu`] |
//! | Cluster fabric (topology, EDR InfiniBand model) | [`fabric`] |
//! | Deterministic fault injection (drop/dup/delay/corrupt, partitions, GPU failures) | [`fault`] |
//! | UCX-style UCP layer (tag matching, eager/rendezvous, GPU transports, reliability) | [`ucp`] |
//! | Topology-aware collective engine (allreduce/bcast/reduce/barrier/alltoall) | [`coll`] |
//! | Charm++ runtime + GPU-aware UCX machine layer | [`charm`] |
//! | Adaptive MPI on Charm++ | [`ampi`] |
//! | OpenMPI-style baseline directly on UCP | [`ompi`] |
//! | Charm4py-style channels + Python cost model | [`charm4py`] |
//! | OSU-adapted microbenchmarks (Figs. 10–13, Table I) | [`osu`] |
//! | Jacobi3D proxy application (Figs. 14–16) | [`jacobi`] |
//! | Many-client service layer (Dask-style scatter/submit/gather futures) | [`svc`] |
//! | Benchmark harness + chaos scenario matrix with per-layer attribution | [`bench`] |
//!
//! ## Quickstart
//!
//! ```
//! use rucx::prelude::*;
//!
//! // A two-node Summit-like cluster (6 GPUs per node).
//! let mut sim = build_sim(Topology::summit(2), MachineConfig::default());
//!
//! // Allocate GPU buffers on two devices.
//! let src = sim.world_mut().gpu.pool.alloc_device(DeviceId(0), 1 << 20, true).unwrap();
//! let dst = sim.world_mut().gpu.pool.alloc_device(DeviceId(6), 1 << 20, true).unwrap();
//! sim.world_mut().gpu.pool.write(src, &vec![42u8; 1 << 20]).unwrap();
//!
//! // Run an AMPI program: rank 0 sends its GPU buffer to rank 6,
//! // CUDA-aware-MPI style — the data never touches user host code.
//! rucx::ampi::launch(&mut sim, move |mpi, ctx| match mpi.rank() {
//!     0 => mpi.send(ctx, src, 6, 0),
//!     6 => {
//!         let status = mpi.recv(ctx, dst, 0, 0);
//!         assert_eq!(status.size, 1 << 20);
//!     }
//!     _ => {}
//! });
//! assert_eq!(sim.run(), RunOutcome::Completed);
//! assert_eq!(sim.world().gpu.pool.read(dst).unwrap(), vec![42u8; 1 << 20]);
//! ```

pub use rucx_ampi as ampi;
pub use rucx_bench as bench;
pub use rucx_charm as charm;
pub use rucx_charm4py as charm4py;
pub use rucx_coll as coll;
pub use rucx_compat as compat;
pub use rucx_fabric as fabric;
pub use rucx_fault as fault;
pub use rucx_gpu as gpu;
pub use rucx_jacobi as jacobi;
pub use rucx_ompi as ompi;
pub use rucx_osu as osu;
pub use rucx_sim as sim;
pub use rucx_svc as svc;
pub use rucx_ucp as ucp;

/// Common imports for examples and applications.
pub mod prelude {
    pub use rucx_fabric::Topology;
    pub use rucx_gpu::{DeviceId, KernelCost, MemKind, MemRef};
    pub use rucx_sim::time::{as_ms, as_us, ms, us};
    pub use rucx_sim::{ProcId, RunOutcome, Simulation};
    pub use rucx_ucp::{build_sim, MCtx, MSim, Machine, MachineConfig, UcpConfig};
}
